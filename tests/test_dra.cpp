#include "core/dra.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TaskSet half_set() {
  TaskSet ts("dra");
  ts.add(make_task(0, "a", 10.0, 3.0, 0.3));  // u = 0.3
  ts.add(make_task(1, "b", 20.0, 4.0, 0.4));  // u = 0.2
  return ts;  // U = 0.5 -> eta = 0.5
}

TEST(Dra, EtaIsTheStaticOptimalSpeed) {
  FakeContext ctx(half_set());
  DraGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.eta(), 0.5, 1e-12);
}

TEST(Dra, FreshJobRunsAtEta) {
  FakeContext ctx(half_set());
  DraGovernor g;
  g.on_start(ctx);
  auto& job = ctx.add_job(0, 0, 0.0);
  g.on_release(job, ctx);
  // Canonical allotment = wcet / eta = 6; speed = 3 / 6 = eta.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.5, 1e-12);
}

TEST(Dra, ReclaimsEarlinessOfCompletedEarlierJob) {
  FakeContext ctx(half_set());
  DraGovernor g;
  g.on_start(ctx);
  // Both jobs released at t = 0.  Job of task 0 (deadline 10) finishes
  // almost immediately at t = 1; the canonical schedule (at eta = 0.5)
  // still owes it 6 - 1 = 5 time units.  Task 1's job may reclaim them.
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  g.on_release(j0, ctx);
  g.on_release(j1, ctx);

  ctx.now_ = 1.0;
  j0.actual = 0.5;
  j0.executed = 0.5;
  g.on_completion(j0, ctx);
  ctx.clear_jobs();
  auto& j1b = ctx.add_job(1, 0, 0.0);

  // Budget for task 1's job: its own canonical allotment (4 / 0.5 = 8)
  // plus the 5 leftover canonical units of the finished job -> 13.
  // Speed = 4 / 13.
  EXPECT_NEAR(g.select_speed(j1b, ctx), 4.0 / 13.0, 1e-9);
}

TEST(Dra, CanonicalQueueDrainsOverTime) {
  FakeContext ctx(half_set());
  DraGovernor g;
  g.on_start(ctx);
  auto& j0 = ctx.add_job(0, 0, 0.0);
  g.on_release(j0, ctx);
  // After 4 time units the canonical schedule consumed 4 of the 6
  // allotted units; remaining budget = 2; rem work still 3 -> speed
  // clamps at 1 (the job is *behind* the canonical schedule, which can
  // happen when it ran slower than eta meanwhile).
  ctx.now_ = 4.0;
  j0.executed = 0.0;
  EXPECT_NEAR(g.select_speed(j0, ctx), 1.0, 1e-12);
}

TEST(Dra, NeverStealsFromIncompleteEqualDeadlineJob) {
  TaskSet ts("tie");
  ts.add(make_task(0, "a", 10.0, 3.0));
  ts.add(make_task(1, "b", 10.0, 3.0));  // same deadline as a
  FakeContext ctx(std::move(ts));
  DraGovernor g;
  g.on_start(ctx);
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  g.on_release(j0, ctx);
  g.on_release(j1, ctx);
  // Task 1's job must not count task 0's (incomplete, same deadline,
  // earlier tie-break) canonical allotment.
  const double speed = g.select_speed(j1, ctx);
  EXPECT_NEAR(speed, 3.0 / 5.0, 1e-9);  // own allotment = 3 / 0.6 = 5
}

TEST(Dra, WorstCaseWorkloadNeverMisses) {
  const TaskSet ts = half_set();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  DraGovernor g;
  sim::SimOptions opts;
  opts.length = 200.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.average_speed, 0.5, 0.05);  // sticks near eta
}

TEST(Dra, LightWorkloadBeatsStaticSpeedEnergy) {
  const TaskSet ts = half_set();
  const auto light = task::constant_ratio_model(0.25);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 200.0;
  DraGovernor dra;
  const auto r = sim::simulate(ts, *light, proc, dra, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_LT(r.average_speed, 0.5);  // reclaimed below eta
}

}  // namespace
}  // namespace dvs::core
