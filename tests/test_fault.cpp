#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "core/no_dvs.hpp"
#include "cpu/processors.hpp"
#include "fault/checked_governor.hpp"
#include "mp/global_sim.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::fault {
namespace {

using task::make_task;
using task::TaskSet;
using util::ContractError;
using util::InternalError;

/// Test governor: always requests a fixed speed.
class FixedSpeedGovernor final : public sim::Governor {
 public:
  explicit FixedSpeedGovernor(double alpha) : alpha_(alpha) {}
  double select_speed(const sim::Job&, const sim::SimContext&) override {
    return alpha_;
  }
  std::string name() const override { return "fixed"; }

 private:
  double alpha_;
};

/// Test governor: alternates between two speeds on every decision.
class AlternatingGovernor final : public sim::Governor {
 public:
  double select_speed(const sim::Job&, const sim::SimContext&) override {
    flip_ = !flip_;
    return flip_ ? 1.0 : 0.5;
  }
  std::string name() const override { return "alternating"; }

 private:
  bool flip_ = false;
};

TaskSet one_task() {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 2.0, 0.5));
  return ts;
}

sim::SimResult run(const TaskSet& ts, const task::ExecutionTimeModel& wl,
                   const cpu::Processor& proc, sim::Governor& g,
                   sim::OverrunPolicy policy) {
  sim::SimOptions opts;
  opts.length = 40.0;
  opts.containment = policy;
  return sim::simulate(ts, wl, proc, g, opts);
}

TEST(FaultSpec, ValidatesKnobRanges) {
  EXPECT_NO_THROW(FaultSpec{}.validate());
  FaultSpec ok;
  ok.overrun_prob = 1.0;
  ok.overrun_magnitude = 2.5;
  ok.stall_time = 0.1;
  EXPECT_NO_THROW(ok.validate());

  FaultSpec bad_prob;
  bad_prob.overrun_prob = 1.5;
  EXPECT_THROW(bad_prob.validate(), ContractError);
  bad_prob.overrun_prob = -0.1;
  EXPECT_THROW(bad_prob.validate(), ContractError);

  FaultSpec bad_mag;
  bad_mag.overrun_magnitude = -1.0;
  EXPECT_THROW(bad_mag.validate(), ContractError);

  FaultSpec bad_stall;
  bad_stall.stall_time = std::nan("");
  EXPECT_THROW(bad_stall.validate(), ContractError);
}

TEST(FaultyWorkload, NoFaultsIsPassThrough) {
  auto base = task::constant_ratio_model(0.7);
  FaultSpec spec;
  spec.stuck_prob = 1.0;  // processor-channel knobs must not matter here
  EXPECT_EQ(faulty_workload(base, spec).get(), base.get());
}

TEST(FaultyWorkload, OverrunDrawsAreDeterministicAndShaped) {
  const TaskSet ts = one_task();
  FaultSpec spec;
  spec.seed = 7;
  spec.overrun_prob = 0.5;
  spec.overrun_magnitude = 0.25;
  auto a = faulty_workload(task::constant_ratio_model(1.0), spec);
  auto b = faulty_workload(task::constant_ratio_model(1.0), spec);

  int overruns = 0;
  for (std::int64_t j = 0; j < 400; ++j) {
    const Work wa = a->draw(ts[0], j);
    EXPECT_DOUBLE_EQ(wa, b->draw(ts[0], j));  // stateless counter hashing
    if (wa > ts[0].wcet) {
      EXPECT_DOUBLE_EQ(wa, ts[0].wcet * 1.25);  // documented overrun shape
      ++overruns;
    }
  }
  // ~Binomial(400, 0.5); 140..260 is > 6 sigma.
  EXPECT_GT(overruns, 140);
  EXPECT_LT(overruns, 260);
}

TEST(FaultyWorkload, JitterFoldsIntoExtraDemand) {
  const TaskSet ts = one_task();
  FaultSpec spec;
  spec.seed = 11;
  spec.jitter_prob = 1.0;
  spec.jitter_time = 0.5;
  auto wl = faulty_workload(task::constant_ratio_model(1.0), spec);
  for (std::int64_t j = 0; j < 50; ++j) {
    const Work w = wl->draw(ts[0], j);
    EXPECT_GE(w, ts[0].wcet);
    EXPECT_LE(w, ts[0].wcet + 0.5);
  }
}

TEST(Containment, NoneCountsOverrunsAndRunsPastBudget) {
  const TaskSet ts = one_task();
  FaultSpec spec;
  spec.overrun_prob = 1.0;
  spec.overrun_magnitude = 0.5;  // actual = 3.0 against wcet = 2.0
  auto wl = faulty_workload(task::constant_ratio_model(1.0), spec);
  core::NoDvsGovernor g;
  const auto r = run(ts, *wl, cpu::ideal_processor(), g,
                     sim::OverrunPolicy::kNone);
  EXPECT_EQ(r.jobs_released, 4);
  EXPECT_EQ(r.jobs_overrun, 4);
  EXPECT_EQ(r.overruns_contained, 0);
  EXPECT_NEAR(r.busy_time, 12.0, 1e-9);  // 4 jobs x 3.0 work at full speed
  EXPECT_EQ(r.deadline_misses, 0);       // 3.0 < period 10: still feasible
}

TEST(Containment, ClampAtWcetRestoresTheFaultFreeRun) {
  const TaskSet ts = one_task();
  auto clean = task::constant_ratio_model(1.0);
  FaultSpec spec;
  spec.overrun_prob = 1.0;
  spec.overrun_magnitude = 0.5;
  auto wl = faulty_workload(clean, spec);

  core::NoDvsGovernor g1;
  const auto baseline = run(ts, *clean, cpu::ideal_processor(), g1,
                            sim::OverrunPolicy::kNone);
  core::NoDvsGovernor g2;
  const auto clamped = run(ts, *wl, cpu::ideal_processor(), g2,
                           sim::OverrunPolicy::kClampAtWcet);

  EXPECT_EQ(clamped.jobs_overrun, 4);
  EXPECT_EQ(clamped.overruns_contained, 4);
  // Budget enforcement makes the faulty run numerically identical to the
  // fault-free one.
  EXPECT_DOUBLE_EQ(clamped.busy_time, baseline.busy_time);
  EXPECT_DOUBLE_EQ(clamped.total_energy(), baseline.total_energy());
  EXPECT_EQ(clamped.deadline_misses, 0);
}

TEST(Containment, EscalateRunsTheOverrunTailAtMaxSpeed) {
  const TaskSet ts = one_task();
  FaultSpec spec;
  spec.overrun_prob = 1.0;
  spec.overrun_magnitude = 0.5;  // actual = 3.0
  auto wl = faulty_workload(task::constant_ratio_model(1.0), spec);

  FixedSpeedGovernor slow(0.5);
  const auto r = run(ts, *wl, cpu::ideal_processor(), slow,
                     sim::OverrunPolicy::kEscalateToMaxSpeed);
  EXPECT_EQ(r.jobs_overrun, 4);
  EXPECT_EQ(r.overruns_contained, 4);
  // Per job: 2.0 budget at 0.5 (4 s) + 1.0 overrun tail at 1.0 (1 s).
  EXPECT_NEAR(r.busy_time, 20.0, 1e-9);
  EXPECT_EQ(r.deadline_misses, 0);

  FixedSpeedGovernor slow2(0.5);
  const auto uncontained = run(ts, *wl, cpu::ideal_processor(), slow2,
                               sim::OverrunPolicy::kNone);
  // Without escalation the whole 3.0 runs at 0.5: 6 s per job.
  EXPECT_NEAR(uncontained.busy_time, 24.0, 1e-9);
  EXPECT_EQ(uncontained.overruns_contained, 0);
}

TEST(ProcessorFaults, StuckFrequencyIgnoresEveryRequest) {
  const TaskSet ts = one_task();
  auto wl = task::constant_ratio_model(1.0);
  FaultSpec spec;
  spec.stuck_prob = 1.0;
  const cpu::Processor proc = faulty_processor(cpu::ideal_processor(), spec);
  EXPECT_NE(proc.faults, nullptr);
  EXPECT_NE(proc.name.find("+faults"), std::string::npos);

  AlternatingGovernor g;
  const auto r = run(ts, *wl, proc, g, sim::OverrunPolicy::kNone);
  // The first segment pins the operating point; every later change request
  // is swallowed by the stuck-frequency fault.
  EXPECT_EQ(r.speed_switches, 0);
  EXPECT_GT(r.processor_faults, 0);
}

TEST(ProcessorFaults, ExtraStallsAreChargedAndCounted) {
  const TaskSet ts = one_task();
  auto wl = task::constant_ratio_model(1.0);
  FaultSpec spec;
  spec.stall_prob = 1.0;
  spec.stall_time = 0.01;
  const cpu::Processor proc = faulty_processor(cpu::ideal_processor(), spec);

  AlternatingGovernor g;
  const auto r = run(ts, *wl, proc, g, sim::OverrunPolicy::kNone);
  // Jobs alternate 1.0 / 0.5: three speed changes across four jobs, each
  // with an injected 10 ms stall (the ideal processor's own cost is zero).
  EXPECT_EQ(r.speed_switches, 3);
  EXPECT_EQ(r.processor_faults, 3);
  EXPECT_NEAR(r.transition_time, 0.03, 1e-9);
  EXPECT_EQ(r.deadline_misses, 0);
}

TEST(ProcessorFaults, NoFaultsLeavesProcessorUntouched) {
  FaultSpec spec;
  spec.overrun_prob = 1.0;  // workload-channel knobs must not matter here
  const cpu::Processor proc = faulty_processor(cpu::ideal_processor(), spec);
  EXPECT_EQ(proc.faults, nullptr);
  EXPECT_EQ(proc.name, "ideal");
}

TEST(CheckedGovernor, ForwardsCleanGovernorsUnchanged) {
  const TaskSet ts = one_task();
  auto wl = task::constant_ratio_model(1.0);
  core::NoDvsGovernor plain;
  auto wrapped = checked(std::make_unique<core::NoDvsGovernor>());
  EXPECT_EQ(wrapped->name(), plain.name());

  const auto a =
      run(ts, *wl, cpu::ideal_processor(), plain, sim::OverrunPolicy::kNone);
  const auto b =
      run(ts, *wl, cpu::ideal_processor(), *wrapped, sim::OverrunPolicy::kNone);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.speed_switches, b.speed_switches);
}

TEST(CheckedGovernor, ThrowsOnOutOfRangeSpeeds) {
  const TaskSet ts = one_task();
  auto wl = task::constant_ratio_model(1.0);
  {
    auto too_fast = checked(std::make_unique<FixedSpeedGovernor>(1.5));
    EXPECT_THROW((void)run(ts, *wl, cpu::ideal_processor(), *too_fast,
                           sim::OverrunPolicy::kNone),
                 InternalError);
  }
  {
    auto negative = checked(std::make_unique<FixedSpeedGovernor>(-0.25));
    EXPECT_THROW((void)run(ts, *wl, cpu::ideal_processor(), *negative,
                           sim::OverrunPolicy::kNone),
                 InternalError);
  }
  {
    auto nan_speed =
        checked(std::make_unique<FixedSpeedGovernor>(std::nan("")));
    EXPECT_THROW((void)run(ts, *wl, cpu::ideal_processor(), *nan_speed,
                           sim::OverrunPolicy::kNone),
                 InternalError);
  }
}

// --- FaultSpec rejection table -------------------------------------------
// One row per out-of-range knob: validation must throw ContractError and
// the message must name the offending field, so a bad experiment config
// fails with an actionable error instead of a generic one.

using KnobCase = std::pair<const char*, void (*)(FaultSpec&)>;

class FaultSpecRejection : public ::testing::TestWithParam<KnobCase> {};

TEST_P(FaultSpecRejection, RejectsOutOfRangeNamingTheField) {
  const auto& [field, poison] = GetParam();
  FaultSpec spec;
  poison(spec);
  try {
    spec.validate();
    FAIL() << "expected ContractError for out-of-range " << field;
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "validation message must name '" << field << "', got: "
        << e.what();
  }
  // The entry points guard with the same validation: a bad spec must not
  // reach a workload or processor.
  EXPECT_THROW((void)faulty_workload(task::constant_ratio_model(1.0), spec),
               ContractError);
  EXPECT_THROW((void)faulty_processor(cpu::ideal_processor(), spec),
               ContractError);
}

INSTANTIATE_TEST_SUITE_P(
    Table, FaultSpecRejection,
    ::testing::Values(
        KnobCase{"overrun_prob", [](FaultSpec& s) { s.overrun_prob = 1.5; }},
        KnobCase{"overrun_prob", [](FaultSpec& s) { s.overrun_prob = -0.1; }},
        KnobCase{"overrun_prob",
                 [](FaultSpec& s) { s.overrun_prob = std::nan(""); }},
        KnobCase{"jitter_prob", [](FaultSpec& s) { s.jitter_prob = 2.0; }},
        KnobCase{"stuck_prob", [](FaultSpec& s) { s.stuck_prob = -1.0; }},
        KnobCase{"stall_prob",
                 [](FaultSpec& s) {
                   s.stall_prob = std::numeric_limits<double>::infinity();
                 }},
        KnobCase{"overrun_magnitude",
                 [](FaultSpec& s) { s.overrun_magnitude = -0.5; }},
        KnobCase{"overrun_magnitude",
                 [](FaultSpec& s) {
                   s.overrun_magnitude =
                       std::numeric_limits<double>::infinity();
                 }},
        KnobCase{"jitter_time", [](FaultSpec& s) { s.jitter_time = -1e-9; }},
        KnobCase{"stall_time",
                 [](FaultSpec& s) { s.stall_time = std::nan(""); }}));

// --- Containment edge cases ----------------------------------------------

TEST(ContainmentEdge, EscalateWithZeroRemainingBudgetAtDispatch) {
  // wcet == bcet and a +50% overrun: the budget-exhaustion timer fires
  // exactly when executed work reaches the WCET, so the job re-dispatches
  // with zero remaining budget and the whole overrun tail must run at max
  // speed — not loop or stall at the boundary.
  TaskSet ts("edge");
  ts.add(make_task(0, "a", 10.0, 2.0, 2.0));
  FaultSpec spec;
  spec.overrun_prob = 1.0;
  spec.overrun_magnitude = 0.5;  // actual = 3.0 against wcet = 2.0
  auto wl = faulty_workload(task::constant_ratio_model(1.0), spec);
  FixedSpeedGovernor slow(0.5);
  const auto r = run(ts, *wl, cpu::ideal_processor(), slow,
                     sim::OverrunPolicy::kEscalateToMaxSpeed);
  EXPECT_EQ(r.jobs_overrun, 4);
  EXPECT_EQ(r.overruns_contained, 4);
  // Per job: 2.0 budget at 0.5 (4 s) + 1.0 tail at max speed 1.0 (1 s).
  EXPECT_NEAR(r.busy_time, 20.0, 1e-9);
  EXPECT_EQ(r.deadline_misses, 0);
}

TEST(ContainmentEdge, OverrunCompletingAtTheFinalHorizonInstant) {
  // One job whose overrun tail retires exactly at the simulation horizon:
  // the completion must land (counted, not truncated) and the overrun must
  // still be recorded.  period 10, wcet 2, actual 3 at full speed -> done
  // at t = 3; horizon 3 ends the run on that very event.
  TaskSet ts("edge");
  ts.add(make_task(0, "a", 10.0, 2.0, 0.5));
  FaultSpec spec;
  spec.overrun_prob = 1.0;
  spec.overrun_magnitude = 0.5;
  auto wl = faulty_workload(task::constant_ratio_model(1.0), spec);
  core::NoDvsGovernor g;
  sim::SimOptions opts;
  opts.length = 3.0;
  opts.containment = sim::OverrunPolicy::kNone;
  const auto r = sim::simulate(ts, *wl, cpu::ideal_processor(), g, opts);
  EXPECT_EQ(r.jobs_released, 1);
  EXPECT_EQ(r.jobs_completed, 1);
  EXPECT_EQ(r.jobs_truncated, 0);
  EXPECT_EQ(r.jobs_overrun, 1);
  EXPECT_NEAR(r.busy_time, 3.0, 1e-9);
  EXPECT_EQ(r.deadline_misses, 0);  // deadline 10 is past the horizon
}

// ---- global-backend arm (DESIGN.md §14) ---------------------------------

/// Four tasks at U = 1.2: overloads any single core, comfortably GFB-
/// schedulable on two (dispatch floor (1.2 + 0.3) / 2 = 0.75).
TaskSet four_tasks() {
  TaskSet ts("gfault");
  for (std::int32_t i = 0; i < 4; ++i) {
    ts.add(make_task(i, std::string(1, static_cast<char>('a' + i)), 10.0,
                     3.0, 3.0));
  }
  return ts;
}

TEST(Containment, GlobalBackendCountsAndContainsOverruns) {
  const TaskSet ts = four_tasks();
  FaultSpec spec;
  spec.seed = 7;
  spec.overrun_prob = 0.5;
  spec.overrun_magnitude = 0.5;
  const auto arm = [&](sim::OverrunPolicy policy, bool faults) {
    task::ExecutionTimeModelPtr wl = task::constant_ratio_model(1.0);
    if (faults) wl = faulty_workload(std::move(wl), spec);
    FixedSpeedGovernor g(1.0);
    mp::GlobalOptions o;
    o.length = 40.0;
    o.n_cores = 2;
    o.containment = policy;
    return mp::simulate_global(ts, *wl, cpu::ideal_processor(), g, o);
  };

  const mp::GlobalResult clean = arm(sim::OverrunPolicy::kNone, false);
  EXPECT_EQ(clean.total.jobs_overrun, 0);
  EXPECT_EQ(clean.total.deadline_misses, 0);

  // kNone: overruns are counted, not contained, and run past budget.
  const mp::GlobalResult none = arm(sim::OverrunPolicy::kNone, true);
  EXPECT_GT(none.total.jobs_overrun, 0);
  EXPECT_EQ(none.total.overruns_contained, 0);
  EXPECT_GT(none.total.busy_time, clean.total.busy_time);

  // Clamping restores the fault-free schedule exactly: the base draws are
  // already at WCET, so clamped overrun demands coincide with them and
  // only the counters differ.
  const mp::GlobalResult clamped = arm(sim::OverrunPolicy::kClampAtWcet,
                                       true);
  EXPECT_EQ(clamped.total.jobs_overrun, none.total.jobs_overrun);
  EXPECT_EQ(clamped.total.overruns_contained, clamped.total.jobs_overrun);
  EXPECT_EQ(clamped.total.busy_time, clean.total.busy_time);
  EXPECT_EQ(clamped.total.busy_energy, clean.total.busy_energy);
  EXPECT_EQ(clamped.total.deadline_misses, clean.total.deadline_misses);
  EXPECT_EQ(clamped.migrations.size(), clean.migrations.size());

  const mp::GlobalResult esc = arm(sim::OverrunPolicy::kEscalateToMaxSpeed,
                                   true);
  EXPECT_EQ(esc.total.overruns_contained, esc.total.jobs_overrun);

  // Overrun counters are platform-level only: an overrun is detected at
  // release, before the job is dispatched to (possibly several) cores, so
  // the per-core views deliberately carry none.
  for (const mp::GlobalResult* r : {&clean, &none, &clamped, &esc}) {
    for (const auto& c : r->cores) {
      EXPECT_EQ(c.jobs_overrun, 0);
      EXPECT_EQ(c.overruns_contained, 0);
    }
  }
}

TEST(ContainmentNames, RoundTripAndRejectUnknown) {
  for (const auto policy :
       {sim::OverrunPolicy::kNone, sim::OverrunPolicy::kClampAtWcet,
        sim::OverrunPolicy::kEscalateToMaxSpeed}) {
    EXPECT_EQ(containment_by_name(containment_name(policy)), policy);
  }
  EXPECT_EQ(containment_by_name("CLAMP_AT_WCET"),
            sim::OverrunPolicy::kClampAtWcet);  // case-insensitive
  EXPECT_THROW((void)containment_by_name("abort"), ContractError);
}

}  // namespace
}  // namespace dvs::fault
