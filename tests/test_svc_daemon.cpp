// svc::Daemon — loopback end-to-end over real TCP.
//
// Covers the daemon's operational contract: ephemeral-port startup,
// request/response over the wire, batch-vs-single byte identity through
// the network path, resilience (malformed lines and oversized requests
// answer an error without dropping the connection), the stats endpoint's
// per-endpoint counters, concurrent connections, and both shutdown paths
// (client-initiated {"op":"shutdown"} and server-side stop()).
#include "svc/daemon.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_mini.hpp"
#include "obs/json_writer.hpp"
#include "util/error.hpp"

namespace dvs::svc {
namespace {

using obs::JsonValue;
using obs::parse_json;

/// Minimal blocking NDJSON test client.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
    EXPECT_TRUE(connected_) << std::strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  void send_raw(const std::string& bytes) {
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        FAIL() << "send: " << std::strerror(errno);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// One response line; empty string on EOF.
  std::string recv_line() {
    while (true) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return {};
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string round_trip(const std::string& line) {
    send_raw(line + "\n");
    return recv_line();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

const char* kTasksJson =
    R"("tasks":[{"name":"a","period":0.0024,"wcet":0.00022},)"
    R"({"name":"b","period":0.0048,"wcet":0.0005},)"
    R"({"name":"c","period":0.0096,"wcet":0.00048}])";

TEST(SvcDaemon, BindsAnEphemeralPortAndAnswersPing) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  ASSERT_GT(daemon.port(), 0);
  TestClient client(daemon.port());
  EXPECT_EQ(client.round_trip(R"({"op":"ping","id":1})"),
            R"({"ok":true,"op":"ping","id":1})");
  daemon.stop();
}

TEST(SvcDaemon, AdmissionOverTheWire) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient client(daemon.port());
  const JsonValue v = parse_json(client.round_trip(
      std::string(R"({"op":"admit",)") + kTasksJson + "}"));
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_TRUE(v.find("admitted")->boolean);
  daemon.stop();
}

TEST(SvcDaemon, BatchOverTheWireIsByteIdenticalToSingles) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient client(daemon.port());
  const std::vector<std::string> queries = {
      R"({"op":"ping","id":1})",
      std::string(R"({"op":"admit","id":2,)") + kTasksJson + "}",
      R"({"op":"admit","id":3,"tasks":[{"period":0.01,"wcet":0.009},)"
      R"({"period":0.01,"wcet":0.009}]})",
  };
  std::vector<std::string> singles;
  for (const std::string& q : queries) singles.push_back(client.round_trip(q));
  std::string batch = R"({"op":"batch","queries":[)";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) batch.push_back(',');
    batch += queries[i];
  }
  batch += "]}";
  const JsonValue v = parse_json(client.round_trip(batch));
  ASSERT_TRUE(v.find("ok")->boolean);
  const JsonValue* results = v.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(obs::write_json(results->array[i]), singles[i]);
  }
  daemon.stop();
}

TEST(SvcDaemon, MalformedLineDoesNotDropTheConnection) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient client(daemon.port());
  const std::string err = client.round_trip("{definitely not json");
  EXPECT_EQ(err.rfind(R"({"ok":false)", 0), 0u) << err;
  // CRLF framing is accepted too.
  client.send_raw("{\"op\":\"ping\"}\r\n");
  EXPECT_EQ(client.recv_line(), R"({"ok":true,"op":"ping"})");
  daemon.stop();
}

TEST(SvcDaemon, OversizedRequestIsRejectedAndTheStreamResynchronizes) {
  DaemonOptions opts;
  opts.max_request_bytes = 1024;
  Daemon daemon(opts);
  daemon.start();
  TestClient client(daemon.port());
  // 4 KB of garbage on one line: one error response, then the connection
  // must keep serving the next (valid) request.
  const std::string huge(4096, 'x');
  const std::string err = client.round_trip(huge);
  EXPECT_EQ(err.rfind(R"({"ok":false)", 0), 0u) << err;
  EXPECT_NE(err.find("1024"), std::string::npos) << err;
  EXPECT_EQ(client.round_trip(R"({"op":"ping"})"),
            R"({"ok":true,"op":"ping"})");
  daemon.stop();
}

TEST(SvcDaemon, StatsCountPerEndpointTraffic) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient client(daemon.port());
  (void)client.round_trip(R"({"op":"ping"})");
  (void)client.round_trip(R"({"op":"ping"})");
  (void)client.round_trip(std::string(R"({"op":"admit",)") + kTasksJson +
                          "}");
  (void)client.round_trip("not json");
  const JsonValue v = parse_json(client.round_trip(R"({"op":"stats"})"));
  ASSERT_TRUE(v.find("ok")->boolean);
  const JsonValue* endpoints = v.find("daemon")->find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  EXPECT_EQ(endpoints->find("ping")->find("requests")->number, 2.0);
  EXPECT_EQ(endpoints->find("admit")->find("requests")->number, 1.0);
  // The malformed line lands on the "?" endpoint as an error.
  EXPECT_EQ(endpoints->find("?")->find("errors")->number, 1.0);
  // Latency quantiles are present once an endpoint saw traffic.
  EXPECT_GE(endpoints->find("ping")->find("p99_us")->number, 0.0);
  daemon.stop();
}

TEST(SvcDaemon, ServesConcurrentConnections) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  const std::uint16_t port = daemon.port();
  constexpr int kClients = 8;
  constexpr int kQueries = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client(port);
      if (!client.connected()) return;
      const std::string q =
          std::string(R"({"op":"admit","id":)") + std::to_string(c) + "," +
          kTasksJson + "}";
      const std::string expected = client.round_trip(q);
      for (int i = 1; i < kQueries; ++i) {
        if (client.round_trip(q) == expected) ++ok_counts[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kQueries - 1) << "client " << c;
  }
  daemon.stop();
}

TEST(SvcDaemon, ClientShutdownOpStopsTheDaemon) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient client(daemon.port());
  EXPECT_EQ(client.round_trip(R"({"op":"shutdown"})"),
            R"({"ok":true,"op":"shutdown"})");
  daemon.wait();  // must return: the shutdown op tears everything down
  EXPECT_TRUE(daemon.stopping());
  // A second stop() is a harmless no-op.
  daemon.stop();
}

TEST(SvcDaemon, StopUnblocksAnIdleConnection) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  TestClient idle(daemon.port());
  (void)idle.round_trip(R"({"op":"ping"})");
  // The client is now idle mid-connection; stop() must not hang on it.
  daemon.stop();
  EXPECT_TRUE(idle.recv_line().empty());  // server closed the socket
}

TEST(SvcDaemon, StartTwiceIsAContractError) {
  Daemon daemon((DaemonOptions()));
  daemon.start();
  EXPECT_THROW(daemon.start(), util::ContractError);
  daemon.stop();
}

}  // namespace
}  // namespace dvs::svc
