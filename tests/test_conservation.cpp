// Conservation invariants: whatever policy runs, the simulator's books
// must balance.  Run every governor over the same workload and check
// time, work, and energy accounting against each other and the trace.
#include <gtest/gtest.h>

#include <map>

#include "core/registry.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

namespace dvs {
namespace {

class Conservation : public ::testing::TestWithParam<const char*> {};

TEST_P(Conservation, BooksBalance) {
  task::TaskSet ts("cons");
  ts.add(task::make_task(0, "a", 0.02, 0.006, 0.0012));
  ts.add(task::make_task(1, "b", 0.05, 0.01, 0.002));
  ts.add(task::make_task(2, "c", 0.1, 0.02, 0.004));
  const auto workload = task::uniform_model(5);
  const cpu::Processor proc = cpu::ideal_processor();

  auto g = core::make_governor(GetParam());
  sim::VectorTrace trace;
  sim::SimOptions opts;
  opts.length = 1.0;  // = 10 hyperperiods: no truncated jobs
  opts.record_jobs = true;
  opts.trace = &trace;
  const auto r = sim::simulate(ts, *workload, proc, *g, opts);

  // 1. No misses, no truncation on this schedulable set and length.
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.jobs_truncated, 0);
  EXPECT_EQ(r.jobs_completed, r.jobs_released);

  // 2. Time is conserved: busy + idle + transitions == simulated length.
  EXPECT_NEAR(r.busy_time + r.idle_time + r.transition_time, r.sim_length,
              1e-6);

  // 3. Work is conserved: retired work (avg speed x busy time) equals the
  //    total actual demand of all completed jobs.
  double total_actual = 0.0;
  for (const auto& j : r.jobs) total_actual += j.actual;
  EXPECT_NEAR(r.average_speed * r.busy_time, total_actual, 1e-6);

  // 4. The trace tells the same story: per-segment work sums to the same
  //    total, and segment boundaries tile [0, length] without overlap.
  double trace_work = 0.0;
  Time covered = 0.0;
  Time cursor = 0.0;
  for (const auto& s : trace.segments()) {
    EXPECT_GE(s.begin, cursor - kTimeEps) << "overlapping segments";
    cursor = s.end;
    covered += s.end - s.begin;
    if (s.kind == sim::SegmentKind::kBusy) {
      trace_work += s.alpha * (s.end - s.begin);
    }
  }
  EXPECT_NEAR(covered, r.sim_length, 1e-6);
  EXPECT_NEAR(trace_work, total_actual, 1e-6);

  // 5. Energy attribution: per-task busy energies sum to the busy total.
  double per_task_sum = 0.0;
  for (double e : r.per_task_energy) per_task_sum += e;
  EXPECT_NEAR(per_task_sum, r.busy_energy, 1e-9);

  // 6. Event bookkeeping: one release per job, one completion per job.
  std::map<std::pair<int, long>, int> releases;
  std::map<std::pair<int, long>, int> completions;
  for (const auto& e : trace.events()) {
    const auto key = std::make_pair(static_cast<int>(e.task_id),
                                    static_cast<long>(e.job_index));
    if (e.kind == sim::TraceEvent::Kind::kRelease) ++releases[key];
    if (e.kind == sim::TraceEvent::Kind::kCompletion) ++completions[key];
  }
  EXPECT_EQ(static_cast<std::int64_t>(releases.size()), r.jobs_released);
  EXPECT_EQ(static_cast<std::int64_t>(completions.size()),
            r.jobs_completed);
  for (const auto& [key, count] : releases) EXPECT_EQ(count, 1);
  for (const auto& [key, count] : completions) EXPECT_EQ(count, 1);

  // 7. Every job obeys causality: release <= completion <= deadline, and
  //    it cannot finish faster than its work at full speed.
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.completion, j.release);
    EXPECT_LE(j.completion, j.abs_deadline + kTimeEps);
    EXPECT_GE(j.completion - j.release, j.actual - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, Conservation,
                         ::testing::Values("noDVS", "staticEDF", "lppsEDF",
                                           "ccEDF", "laEDF", "DRA", "AGR",
                                           "lpSEH-h", "lpSEH",
                                           "uniformSlack"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ConservationWithOverhead, TransitionTimeAccounted) {
  task::TaskSet ts("ov");
  ts.add(task::make_task(0, "a", 0.02, 0.005, 0.001));
  ts.add(task::make_task(1, "b", 0.05, 0.012, 0.0024));
  const auto workload = task::uniform_model(8);
  cpu::Processor proc = cpu::four_level_processor();
  proc.transition = cpu::TransitionModel::constant(50e-6, 1e-4);

  auto g = core::make_governor("ccEDF");
  sim::SimOptions opts;
  opts.length = 1.0;
  const auto r = sim::simulate(ts, *workload, proc, *g, opts);
  EXPECT_NEAR(r.busy_time + r.idle_time + r.transition_time, 1.0, 1e-6);
  EXPECT_NEAR(r.transition_time,
              50e-6 * static_cast<double>(r.speed_switches), 1e-6);
  EXPECT_NEAR(r.transition_energy,
              1e-4 * static_cast<double>(r.speed_switches), 1e-9);
}

}  // namespace
}  // namespace dvs
