#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dvs::util {
namespace {

TEST(RunningStats, EmptyRejectsQueries) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW((void)s.mean(), ContractError);
  EXPECT_THROW((void)s.min(), ContractError);
  EXPECT_THROW((void)s.max(), ContractError);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_THROW((void)s.variance(), ContractError);  // needs n > 1
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // population variance 4 -> sample variance 4 * 8/7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesConcatenation) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50.0), ContractError);
  EXPECT_THROW((void)percentile({1.0}, -1.0), ContractError);
  EXPECT_THROW((void)percentile({1.0}, 101.0), ContractError);
}

}  // namespace
}  // namespace dvs::util
