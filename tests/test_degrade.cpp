// Graceful degradation (DESIGN.md §11): (m,k) window bookkeeping, skip
// legality, the Normal/Degraded mode machine with hysteresis, the engine
// wiring (skips, traces, counters) and the equivalence contracts
// (monitor mode perturbs nothing; disabled is bit-identical).
#include "degrade/degrade.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/no_dvs.hpp"
#include "exp/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "task/task.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::degrade {
namespace {

using task::make_task;
using task::TaskSet;
using util::ContractError;

/// One (1,2)-firm task at utilization 0.8 plus a small hard task: feasible
/// at U = 0.9, so with a lowered backlog threshold the controller sheds
/// without ever being the cause of a miss — every outcome is
/// hand-computable.
TaskSet soft_pair() {
  TaskSet ts("soft_pair");
  ts.add(make_task(0, "soft", 0.1, 0.08));
  ts.add(make_task(1, "hard", 0.1, 0.01));
  return with_task_firmness(ts, 0, 1, 2);
}

/// Aggressive config: one pressure event enters Degraded, threshold low
/// enough that the soft task's own density (0.8) trips it.
DegradationConfig aggressive() {
  DegradationConfig cfg;
  cfg.enter_pressure = 1;
  cfg.backlog_threshold = 0.5;
  return cfg;
}

// --- config validation ----------------------------------------------------

TEST(DegradationConfig, ValidatesEveryKnobNamingTheField) {
  EXPECT_NO_THROW(DegradationConfig{}.validate());
  const struct {
    const char* field;
    void (*poison)(DegradationConfig&);
  } kTable[] = {
      {"backlog_threshold",
       [](DegradationConfig& c) { c.backlog_threshold = 0.0; }},
      {"enter_pressure", [](DegradationConfig& c) { c.enter_pressure = 0; }},
      {"pressure_window",
       [](DegradationConfig& c) { c.pressure_window = -0.1; }},
      {"recovery_clean_jobs",
       [](DegradationConfig& c) { c.recovery_clean_jobs = 0; }},
      {"recovery_quiet",
       [](DegradationConfig& c) { c.recovery_quiet = -1.0; }},
      {"min_degraded_dwell",
       [](DegradationConfig& c) { c.min_degraded_dwell = -1e-9; }},
  };
  for (const auto& row : kTable) {
    DegradationConfig cfg;
    row.poison(cfg);
    try {
      cfg.validate();
      FAIL() << "expected ContractError for " << row.field;
    } catch (const ContractError& e) {
      EXPECT_NE(std::string(e.what()).find(row.field), std::string::npos)
          << "message must name '" << row.field << "', got: " << e.what();
    }
  }
}

// --- firmness helpers and the task model ----------------------------------

TEST(Firmness, HelpersSetWindowsAndHardness) {
  TaskSet ts("t");
  ts.add(make_task(0, "a", 0.1, 0.01));
  ts.add(make_task(1, "b", 0.1, 0.01));
  EXPECT_TRUE(ts[0].is_hard());  // default (1,1)

  const TaskSet all = with_firmness(ts, 2, 5);
  EXPECT_EQ(all[0].mk_m, 2);
  EXPECT_EQ(all[0].mk_k, 5);
  EXPECT_EQ(all[1].mk_k, 5);
  EXPECT_FALSE(all[0].is_hard());

  const TaskSet one = with_task_firmness(ts, 1, 1, 3);
  EXPECT_TRUE(one[0].is_hard());
  EXPECT_FALSE(one[1].is_hard());

  EXPECT_THROW((void)with_firmness(ts, 3, 2), ContractError);   // m > k
  EXPECT_THROW((void)with_firmness(ts, 0, 2), ContractError);   // m < 1
  EXPECT_THROW((void)with_task_firmness(ts, 7, 1, 2), ContractError);
}

// --- window bookkeeping and violations ------------------------------------

TEST(Controller, CountsEverySlidingWindowViolation) {
  TaskSet ts("t");
  ts.add(make_task(0, "a", 0.1, 0.01));
  ts = with_firmness(ts, 2, 3);  // (2,3)-firm
  DegradationController c(ts, DegradationConfig{});

  c.on_job_outcome(0, true, 0.01);    // [met]
  EXPECT_EQ(c.mk_violations(), 0);
  c.on_job_outcome(0, false, 0.11);   // [met, miss]
  EXPECT_EQ(c.mk_violations(), 0);    // window not yet full
  c.on_job_outcome(0, false, 0.21);   // [met, miss, miss]: 1 < 2
  EXPECT_EQ(c.mk_violations(), 1);
  c.on_job_outcome(0, false, 0.31);   // [miss, miss, miss]: slides, again
  EXPECT_EQ(c.mk_violations(), 2);
  c.on_job_outcome(0, true, 0.41);    // [miss, miss, met]: 1 < 2, again
  EXPECT_EQ(c.mk_violations(), 3);
  c.on_job_outcome(0, true, 0.51);    // [miss, met, met]: satisfied
  EXPECT_EQ(c.mk_violations(), 3);
  EXPECT_EQ(c.hard_misses(), 0);      // not a hard task
}

TEST(Controller, HardTaskMissesAreCountedSeparately) {
  TaskSet ts("t");
  ts.add(make_task(0, "a", 0.1, 0.01));  // (1,1): hard
  DegradationController c(ts, DegradationConfig{});
  c.on_job_outcome(0, false, 0.1);
  EXPECT_EQ(c.hard_misses(), 1);
  EXPECT_EQ(c.mk_violations(), 1);  // (1,1) window with 0 met
}

// --- skip legality --------------------------------------------------------

TEST(Controller, SkipLegalityFollowsTheWindow) {
  const TaskSet ts = soft_pair();
  DegradationController c(ts, aggressive());

  // Normal mode: nothing is sheddable no matter how legal the window is.
  EXPECT_FALSE(c.should_skip(0, 0.08, 0.1, 0.0));

  c.on_backlog(2.0, 0.0);  // pressure -> Degraded (enter_pressure = 1)
  EXPECT_EQ(c.mode(), Mode::kDegraded);

  // Hard tasks are never skipped.
  EXPECT_FALSE(c.should_skip(1, 0.01, 0.1, 0.0));

  // Cold start: absent history counts as met, first skip is legal...
  EXPECT_TRUE(c.should_skip(0, 0.08, 0.1, 0.0));
  EXPECT_EQ(c.jobs_skipped(), 1);
  // ...but the skip recorded a non-met outcome, so a second consecutive
  // skip would put two non-met in a (1,2) window: illegal.
  EXPECT_FALSE(c.should_skip(0, 0.08, 0.2, 0.1));
  // A met outcome re-arms the window.
  c.on_job_outcome(0, true, 0.2);
  EXPECT_TRUE(c.should_skip(0, 0.08, 0.3, 0.2));
  // The skip-legality invariant: skips alone never violate the window.
  EXPECT_EQ(c.mk_violations(), 0);
}

TEST(Controller, ShadowDensityDecaysAtTheDeadline) {
  const TaskSet ts = soft_pair();
  DegradationController c(ts, aggressive());
  c.on_backlog(2.0, 0.0);
  ASSERT_TRUE(c.should_skip(0, 0.08, 0.1, 0.0));
  // wcet 0.08 over the 0.1 s to the deadline.
  EXPECT_NEAR(c.shadow_density(0.0), 0.8, 1e-12);
  EXPECT_NEAR(c.shadow_density(0.05), 1.6, 1e-12);  // closer deadline
  EXPECT_EQ(c.shadow_density(0.1), 0.0);            // deadline passed
}

// --- mode machine ---------------------------------------------------------

TEST(Controller, EntersOnlyOnClusteredPressure) {
  const TaskSet ts = soft_pair();
  DegradationConfig cfg;
  cfg.enter_pressure = 2;
  cfg.pressure_window = 0.25;
  DegradationController c(ts, cfg);

  c.on_backlog(2.0, 0.0);
  EXPECT_EQ(c.mode(), Mode::kNormal);   // one event is not enough
  c.on_backlog(2.0, 0.3);
  EXPECT_EQ(c.mode(), Mode::kNormal);   // 0.3 s apart: outside the window
  c.on_backlog(2.0, 0.4);
  EXPECT_EQ(c.mode(), Mode::kDegraded); // 0.1 s apart: clustered
  EXPECT_EQ(c.mode_changes(), 1);
}

TEST(Controller, RecoveryNeedsStreakQuietAndDwell) {
  const TaskSet ts = soft_pair();
  DegradationConfig cfg;
  cfg.enter_pressure = 1;
  cfg.backlog_threshold = 0.5;
  cfg.recovery_clean_jobs = 2;
  cfg.recovery_quiet = 0.1;
  cfg.min_degraded_dwell = 0.05;
  DegradationController c(ts, cfg);

  c.on_backlog(2.0, 0.0);
  ASSERT_EQ(c.mode(), Mode::kDegraded);

  c.on_job_outcome(0, true, 0.04);
  c.on_job_outcome(0, true, 0.08);
  // Streak (2) and dwell (0.08 >= 0.05) hold, but the last pressure was
  // at t = 0 and 0.08 < recovery_quiet: still Degraded.
  EXPECT_EQ(c.mode(), Mode::kDegraded);

  c.on_job_outcome(0, true, 0.12);
  EXPECT_EQ(c.mode(), Mode::kNormal);  // all three gates hold
  EXPECT_EQ(c.mode_changes(), 2);

  // A miss is a pressure event and resets the clean streak.
  c.on_backlog(2.0, 0.2);
  ASSERT_EQ(c.mode(), Mode::kDegraded);
  c.on_job_outcome(0, true, 0.26);
  c.on_job_outcome(0, false, 0.3);    // pressure + streak reset
  c.on_job_outcome(0, true, 0.34);
  c.on_job_outcome(0, true, 0.38);
  EXPECT_EQ(c.mode(), Mode::kDegraded);  // quiet clock restarted at 0.3
  c.on_job_outcome(0, true, 0.41);
  EXPECT_EQ(c.mode(), Mode::kNormal);    // 0.41 - 0.3 >= 0.1
}

TEST(Controller, FinishAccruesTheOpenDegradedInterval) {
  const TaskSet ts = soft_pair();
  DegradationController c(ts, aggressive());
  c.on_backlog(2.0, 0.25);
  c.finish(1.0);
  EXPECT_NEAR(c.time_degraded(), 0.75, 1e-12);
  c.finish(1.0);  // idempotent
  EXPECT_NEAR(c.time_degraded(), 0.75, 1e-12);
}

// --- engine wiring --------------------------------------------------------

/// The soft_pair scenario end to end: the soft task's own release density
/// (0.8 > threshold 0.5) keeps the controller in Degraded mode, so the
/// soft task alternates skip / execute while the hard task and every
/// executed job stay on time.  10 jobs per task over 1 s.
sim::SimResult run_soft_pair(const DegradationConfig* cfg,
                             sim::TraceRecorder* trace = nullptr) {
  const TaskSet ts = soft_pair();
  auto wl = task::constant_ratio_model(1.0);
  core::NoDvsGovernor g;
  sim::SimOptions opts;
  opts.length = 1.0;
  opts.record_jobs = true;
  opts.degradation = cfg;
  opts.trace = trace;
  return sim::simulate(ts, *wl, cpu::ideal_processor(), g, opts);
}

TEST(Engine, SkipsAlternateAndContractHolds) {
  const DegradationConfig cfg = aggressive();
  sim::VectorTrace trace;
  const auto r = run_soft_pair(&cfg, &trace);

  EXPECT_TRUE(r.degradation);
  EXPECT_EQ(r.jobs_released, 20);
  EXPECT_EQ(r.jobs_skipped, 5);       // soft jobs 0, 2, 4, 6, 8
  EXPECT_EQ(r.jobs_completed, 15);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.mk_violations, 0);
  EXPECT_EQ(r.hard_misses, 0);
  EXPECT_EQ(r.mode_changes, 1);       // enters at t = 0, never recovers
  EXPECT_NEAR(r.time_degraded, 1.0, 1e-9);

  // Job records: exactly the even-indexed soft jobs are skipped, skipped
  // jobs retire zero work, and the hard task is untouched.
  int skipped = 0;
  for (const auto& j : r.jobs) {
    if (j.skipped) {
      ++skipped;
      EXPECT_EQ(j.task_id, 0);
      EXPECT_EQ(j.index % 2, 0);
      EXPECT_EQ(j.actual, 0.0);
      EXPECT_FALSE(j.missed);
    }
  }
  EXPECT_EQ(skipped, 5);

  // Trace: one kSkip instant per skipped job, one kModeChange to Degraded.
  int skip_events = 0;
  int mode_events = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == sim::TraceEvent::Kind::kSkip) {
      ++skip_events;
      EXPECT_EQ(e.task_id, 0);
    } else if (e.kind == sim::TraceEvent::Kind::kModeChange) {
      ++mode_events;
      EXPECT_EQ(e.job_index, 1);  // 1 = Degraded
      EXPECT_EQ(e.at, 0.0);
    }
  }
  EXPECT_EQ(skip_events, 5);
  EXPECT_EQ(mode_events, 1);
}

TEST(Engine, MonitorModePerturbsNothing) {
  DegradationConfig monitor = aggressive();
  monitor.skipping = false;
  const auto with = run_soft_pair(&monitor);
  const auto without = run_soft_pair(nullptr);

  // The monitored run observes (mode machine runs, counters fill)...
  EXPECT_TRUE(with.degradation);
  EXPECT_EQ(with.jobs_skipped, 0);
  EXPECT_EQ(with.mode_changes, 1);
  EXPECT_GT(with.time_degraded, 0.0);

  // ...but every simulated quantity is identical to the detached run.
  EXPECT_FALSE(without.degradation);
  EXPECT_EQ(with.jobs_released, without.jobs_released);
  EXPECT_EQ(with.jobs_completed, without.jobs_completed);
  EXPECT_EQ(with.deadline_misses, without.deadline_misses);
  EXPECT_EQ(with.busy_energy, without.busy_energy);
  EXPECT_EQ(with.idle_energy, without.idle_energy);
  EXPECT_EQ(with.busy_time, without.busy_time);
  EXPECT_EQ(with.idle_time, without.idle_time);
  EXPECT_EQ(with.speed_switches, without.speed_switches);
  EXPECT_EQ(with.preemptions, without.preemptions);
  EXPECT_EQ(with.average_speed, without.average_speed);
  EXPECT_EQ(with.per_task_energy, without.per_task_energy);
  ASSERT_EQ(with.jobs.size(), without.jobs.size());
  for (std::size_t j = 0; j < with.jobs.size(); ++j) {
    EXPECT_EQ(with.jobs[j].completion, without.jobs[j].completion);
    EXPECT_EQ(with.jobs[j].actual, without.jobs[j].actual);
    EXPECT_EQ(with.jobs[j].skipped, without.jobs[j].skipped);
  }
}

TEST(Engine, DisabledRunsCarryNoDegradationCounters) {
  const auto r = run_soft_pair(nullptr);
  EXPECT_FALSE(r.degradation);
  EXPECT_EQ(r.jobs_skipped, 0);
  EXPECT_EQ(r.mode_changes, 0);
  EXPECT_EQ(r.time_degraded, 0.0);
  EXPECT_EQ(r.mk_violations, 0);
  EXPECT_EQ(r.hard_misses, 0);
  // And the summary line stays free of degradation text.
  EXPECT_EQ(r.summary().find("degrade"), std::string::npos);
}

TEST(Engine, SummaryMentionsDegradationWhenAttached) {
  const DegradationConfig cfg = aggressive();
  const auto r = run_soft_pair(&cfg);
  EXPECT_NE(r.summary().find("degrade"), std::string::npos);
  EXPECT_NE(r.summary().find("skipped"), std::string::npos);
}

// --- experiment-layer contracts -------------------------------------------

TEST(Experiment, OracleAndDegradationAreIncompatible) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF"};
  cfg.oracle = true;
  cfg.degradation = DegradationConfig{};
  const exp::Case c{soft_pair(), task::constant_ratio_model(1.0)};
  EXPECT_THROW((void)exp::run_case(c, cfg), ContractError);
}

}  // namespace
}  // namespace dvs::degrade
