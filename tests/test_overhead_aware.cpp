#include "core/overhead_aware.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

/// Inner governor with a scripted response.
class ScriptedGovernor final : public sim::Governor {
 public:
  explicit ScriptedGovernor(double alpha) : alpha_(alpha) {}
  double select_speed(const sim::Job&, const sim::SimContext&) override {
    return alpha_;
  }
  std::string name() const override { return "scripted"; }
  double alpha_;
};

cpu::Processor overhead_processor(Time t_switch, double e_switch) {
  cpu::Processor p = cpu::ideal_processor();
  p.transition = cpu::TransitionModel::constant(t_switch, e_switch);
  return p;
}

TaskSet one_task() {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  return ts;
}

TEST(OverheadAware, PassesThroughWhenNoChangeNeeded) {
  FakeContext ctx(one_task());
  ctx.speed_ = 0.5;
  auto& job = ctx.add_job(0, 0, 0.0);
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.5),
                          overhead_processor(0.1, 0.01));
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 0.5);
  EXPECT_EQ(g.vetoes(), 0);
}

TEST(OverheadAware, ShrinksSlowdownBudgetByTwoStalls) {
  FakeContext ctx(one_task());
  ctx.speed_ = 1.0;
  auto& job = ctx.add_job(0, 0, 0.0);
  // Inner wants 0.4 (budget 4 / 0.4 = 10); two stalls of 1.0 shrink the
  // budget to 8 -> corrected speed 0.5.
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.4),
                          overhead_processor(1.0, 0.0));
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.5, 1e-9);
}

TEST(OverheadAware, VetoesWhenStallsEatTheWholeGain) {
  FakeContext ctx(one_task());
  ctx.speed_ = 1.0;
  auto& job = ctx.add_job(0, 0, 0.0);
  // budget 10, stalls 2 x 3.1 -> usable 3.8 < rem 4: cannot slow down.
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.4),
                          overhead_processor(3.1, 0.0));
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
  EXPECT_EQ(g.vetoes(), 1);
}

TEST(OverheadAware, VetoesEnergyNegativeSwitches) {
  FakeContext ctx(one_task());
  ctx.speed_ = 1.0;
  auto& job = ctx.add_job(0, 0, 0.0);
  // Zero stall time, but a huge per-switch energy: staying at full speed
  // costs 4 (P=1 for 4s); slowing to 0.4 costs 0.4^2*4 = 0.64 + 2*10 -> veto.
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.4),
                          overhead_processor(0.0, 10.0));
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
  EXPECT_EQ(g.vetoes(), 1);
}

TEST(OverheadAware, AllowsProfitableSwitches) {
  FakeContext ctx(one_task());
  ctx.speed_ = 1.0;
  auto& job = ctx.add_job(0, 0, 0.0);
  // Tiny switch energy: slowing down is clearly worth it.
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.4),
                          overhead_processor(0.0, 1e-6));
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.4, 1e-9);
  EXPECT_EQ(g.vetoes(), 0);
}

TEST(OverheadAware, SpeedUpPaysOneStall) {
  FakeContext ctx(one_task());
  ctx.speed_ = 0.25;
  auto& job = ctx.add_job(0, 0, 0.0);
  // Inner demands 0.8 (budget 5); one stall of 0.5 -> usable 4.5 ->
  // corrected speed 4 / 4.5 ~= 0.889.
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.8),
                          overhead_processor(0.5, 0.0));
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 4.0 / 4.5, 1e-9);
}

TEST(OverheadAware, NameAppendsSuffix) {
  OverheadAwareGovernor g(std::make_unique<ScriptedGovernor>(0.5),
                          cpu::ideal_processor());
  EXPECT_EQ(g.name(), "scripted+oh");
}

TEST(OverheadAware, RejectsNullInner) {
  EXPECT_THROW(OverheadAwareGovernor(nullptr, cpu::ideal_processor()),
               util::ContractError);
}

TEST(OverheadAware, EndToEndZeroMissesWithRealStalls) {
  // The CNC-style guarantee: slack analysis charged with the stall time,
  // wrapped for energy gating, on a processor with expensive transitions.
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.01, 0.003, 0.0006));
  ts.add(make_task(1, "b", 0.04, 0.01, 0.002));
  ts.add(make_task(2, "c", 0.08, 0.02, 0.004));
  cpu::Processor proc = cpu::strongarm_processor();

  SlackTimeConfig cfg;
  cfg.switch_overhead = proc.transition.switch_time(0.5, 1.0);
  auto g = overhead_aware(std::make_unique<SlackTimeGovernor>(cfg), proc);
  const auto workload = task::uniform_model(5);
  sim::SimOptions opts;
  opts.length = 4.0;
  const auto r = sim::simulate(ts, *workload, proc, *g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_GT(r.speed_switches, 0);
  EXPECT_LT(r.average_speed, 1.0);
}

}  // namespace
}  // namespace dvs::core
