// svc::Session and svc::ProtocolHandler — the Planner API contract.
//
// The load-bearing properties:
//  * Session admission is EXACTLY sched::edf_schedulable (same decision on
//    presets and on fuzzed constrained-deadline sets) plus a static speed
//    that matches sched::minimum_constant_speed and a human-readable
//    rejection reason;
//  * partitioned admission mirrors mp::partition_task_set;
//  * plan() predictions are bit-identical to exp::run_case (the CLI path);
//  * the NDJSON protocol answers every malformed request with a structured
//    {"ok":false,...} error, and batch responses are byte-identical to the
//    same queries issued singly — with and without a thread pool.
#include "svc/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "mp/partition.hpp"
#include "obs/json_mini.hpp"
#include "obs/json_writer.hpp"
#include "sched/analysis.hpp"
#include "svc/protocol.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/task.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dvs::svc {
namespace {

using obs::JsonValue;
using obs::parse_json;

// ---------------------------------------------------------------------------
// Session: uniprocessor admission
// ---------------------------------------------------------------------------

TEST(PlannerSession, AdmitsTheEmbeddedPresets) {
  Session session;
  for (const task::TaskSet& ts : task::embedded_task_sets()) {
    const AdmissionVerdict v = session.admit(ts);
    EXPECT_TRUE(v.admitted) << ts.name() << ": " << v.reason;
    EXPECT_TRUE(v.reason.empty());
    EXPECT_NEAR(v.utilization, ts.utilization(), 1e-12);
    EXPECT_NEAR(v.static_speed, sched::minimum_constant_speed(ts), 1e-9)
        << ts.name();
  }
}

TEST(PlannerSession, RejectsOverloadWithAUtilizationReason) {
  Session session;
  task::TaskSet ts("overload");
  ts.add(task::make_task(0, "hog0", 0.01, 0.007));
  ts.add(task::make_task(1, "hog1", 0.01, 0.007));
  const AdmissionVerdict v = session.admit(ts);
  EXPECT_FALSE(v.admitted);
  EXPECT_EQ(v.static_speed, 0.0);
  EXPECT_NE(v.reason.find("utilization"), std::string::npos) << v.reason;
}

TEST(PlannerSession, RejectsConstrainedDeadlineOverDemandWithACheckpoint) {
  // U = 0.8 < 1, but both deadlines are half the period: h(0.005) = 0.008
  // exceeds the interval, so only the demand test (not the utilization
  // bound) can reject this set.
  Session session;
  task::TaskSet ts("tight");
  for (int i = 0; i < 2; ++i) {
    task::Task t = task::make_task(i, "t" + std::to_string(i), 0.01, 0.004);
    t.deadline = 0.005;
    ts.add(std::move(t));
  }
  ts.validate();
  ASSERT_FALSE(sched::edf_schedulable(ts));
  const AdmissionVerdict v = session.admit(ts);
  EXPECT_FALSE(v.admitted);
  EXPECT_NE(v.reason.find("demand"), std::string::npos) << v.reason;
}

/// Fuzzed agreement with the reference decision procedure: random sets
/// with randomly tightened deadlines and inflated WCETs land on both
/// sides of the schedulability boundary; Session::admit must agree with
/// sched::edf_schedulable on every one of them, and report the matching
/// static speed whenever the set is admitted.
TEST(PlannerSession, FuzzedAdmissionAgreesWithEdfSchedulable) {
  Session session;
  util::Rng rng(20260809);
  int admitted = 0;
  int rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    task::GeneratorConfig gen;
    gen.n_tasks = static_cast<std::size_t>(rng.uniform_int(2, 8));
    gen.total_utilization = 0.4 + 0.55 * rng.unit();
    gen.period_min = 0.01;
    gen.period_max = 0.16;
    const task::TaskSet base =
        task::generate_task_set(gen, rng);
    // Tighten deadlines and inflate WCETs so the demand test has teeth.
    task::TaskSet ts("fuzz" + std::to_string(iter));
    for (const task::Task& src : base) {
      task::Task t = src;
      const double tighten = 0.4 + 0.6 * rng.unit();
      t.deadline = std::max(t.wcet, t.period * tighten);
      const double inflate = 1.0 + 0.6 * rng.unit();
      t.wcet = std::min(t.deadline, t.wcet * inflate);
      t.bcet = std::min(t.bcet, t.wcet);
      ts.add(std::move(t));
    }
    ts.validate();
    const bool reference = sched::edf_schedulable(ts);
    const AdmissionVerdict v = session.admit(ts);
    ASSERT_EQ(v.admitted, reference) << ts.name() << ": " << v.reason;
    if (v.admitted) {
      ++admitted;
      EXPECT_NEAR(v.static_speed, sched::minimum_constant_speed(ts), 1e-9);
      EXPECT_TRUE(v.reason.empty());
    } else {
      ++rejected;
      EXPECT_FALSE(v.reason.empty());
    }
  }
  // The fuzz grid must straddle the boundary or the test proves nothing.
  EXPECT_GT(admitted, 20);
  EXPECT_GT(rejected, 20);
}

TEST(PlannerSession, StatsCountQueriesAndVerdicts) {
  Session session;
  (void)session.admit(task::cnc_task_set());
  task::TaskSet bad("bad");
  bad.add(task::make_task(0, "hog", 0.01, 0.0099));
  bad.add(task::make_task(1, "hog2", 0.01, 0.0099));
  (void)session.admit(bad);
  const SessionStats& s = session.stats();
  EXPECT_EQ(s.admit_queries, 2);
  EXPECT_EQ(s.admitted, 1);
  EXPECT_EQ(s.rejected, 1);
}

// ---------------------------------------------------------------------------
// Session: partitioned admission
// ---------------------------------------------------------------------------

TEST(PlannerSession, PartitionedAdmissionMirrorsMpPartition) {
  Session session;
  const task::TaskSet ins = task::ins_task_set();
  for (const auto h :
       {mp::PartitionHeuristic::kFirstFit, mp::PartitionHeuristic::kBestFit,
        mp::PartitionHeuristic::kWorstFit}) {
    const mp::PartitionResult ref = mp::partition_task_set(ins, 2, h);
    PlacementReport placement;
    const AdmissionVerdict v = session.admit(ins, 2, h, &placement);
    EXPECT_EQ(v.admitted, ref.feasible);
    ASSERT_TRUE(placement.feasible);
    EXPECT_EQ(placement.core_of, ref.partition.core_of);
    ASSERT_EQ(placement.core_utilization.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(placement.core_utilization[c],
                  ref.partition.core_utilization[c], 1e-12);
    }
  }
}

TEST(PlannerSession, PartitionedRejectionNamesTheTask) {
  // Three ~0.9-utilization tasks cannot pack onto two cores.
  Session session;
  task::TaskSet ts("heavy");
  for (int i = 0; i < 3; ++i) {
    ts.add(task::make_task(i, "heavy" + std::to_string(i), 0.01, 0.009));
  }
  PlacementReport placement;
  const AdmissionVerdict v = session.admit(
      ts, 2, mp::PartitionHeuristic::kWorstFit, &placement);
  EXPECT_FALSE(v.admitted);
  EXPECT_FALSE(placement.feasible);
  EXPECT_GE(placement.rejected_task, 0);
  EXPECT_FALSE(v.reason.empty());
}

// ---------------------------------------------------------------------------
// Session: plan == exp::run_case
// ---------------------------------------------------------------------------

TEST(PlannerSession, PlanPredictionsMatchRunCase) {
  const task::TaskSet cnc = task::cnc_task_set();
  QueryOptions o;
  o.governors = {"ccEDF", "lpSEH"};
  o.length = 0.1;
  Session session;
  const PlanReport r = session.plan(cnc, o);
  ASSERT_TRUE(r.admission.admitted);
  ASSERT_EQ(r.plans.size(), 3u);  // noDVS reference first
  EXPECT_EQ(r.plans[0].governor, "noDVS");

  exp::ExperimentConfig cfg;
  cfg.governors = o.governors;
  cfg.sim_length = o.length;
  cfg.n_threads = 1;
  const exp::CaseOutcome ref =
      exp::run_case({cnc, task::workload_by_spec("uniform")}, cfg);
  ASSERT_EQ(ref.outcomes.size(), r.plans.size());
  for (std::size_t i = 0; i < r.plans.size(); ++i) {
    const GovernorPlan& p = r.plans[i];
    const exp::GovernorOutcome& g = ref.outcomes[i];
    EXPECT_EQ(p.governor, g.governor);
    EXPECT_EQ(p.total_energy, g.result.total_energy());  // bit-identical
    EXPECT_EQ(p.normalized_energy, g.normalized_energy);
    EXPECT_EQ(p.jobs_released, g.result.jobs_released);
    EXPECT_EQ(p.deadline_misses, g.result.deadline_misses);
    EXPECT_EQ(p.speed_switches, g.result.speed_switches);
    EXPECT_EQ(p.preemptions, g.result.preemptions);
    EXPECT_EQ(p.deadline_misses, 0);
  }
}

TEST(PlannerSession, PlanWithYdsBoundReportsGaps) {
  QueryOptions o;
  o.governors = {"lpSEH"};
  o.length = 0.1;
  o.yds_bound = true;
  Session session;
  const PlanReport r = session.plan(task::cnc_task_set(), o);
  ASSERT_TRUE(r.have_bounds);
  EXPECT_GT(r.bounds.continuous_energy, 0.0);
  // noDVS reference first, then lpSEH, then the oracle closing column.
  ASSERT_EQ(r.plans.size(), 3u);
  EXPECT_EQ(r.plans.back().governor, "oracle");
  // Gaps >= 1: no governor undercuts the clairvoyant bound.
  EXPECT_GE(r.plans[1].gap_continuous, 1.0 - 1e-6);
}

TEST(PlannerSession, PlanOnARejectedSetSkipsSimulation) {
  task::TaskSet bad("bad");
  bad.add(task::make_task(0, "a", 0.01, 0.008));
  bad.add(task::make_task(1, "b", 0.01, 0.008));
  QueryOptions o;
  o.governors = {"ccEDF"};
  Session session;
  const PlanReport r = session.plan(bad, o);
  EXPECT_FALSE(r.admission.admitted);
  EXPECT_TRUE(r.plans.empty());
  EXPECT_FALSE(r.have_bounds);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

const char* kCncTasksJson =
    R"("tasks":[{"name":"a","period":0.0024,"wcet":0.00022},)"
    R"({"name":"b","period":0.0048,"wcet":0.0005},)"
    R"({"name":"c","period":0.0096,"wcet":0.00048}])";

TEST(Protocol, PingEchoesTheNumericId) {
  ProtocolHandler h;
  EXPECT_EQ(h.handle(R"({"op":"ping","id":7})"),
            R"({"ok":true,"op":"ping","id":7})");
  // Non-numeric ids are not echoed (the field is defined as a number).
  EXPECT_EQ(h.handle(R"({"op":"ping","id":"x"})"),
            R"({"ok":true,"op":"ping"})");
}

TEST(Protocol, MalformedRequestsYieldStructuredErrors) {
  ProtocolHandler h;
  const char* bad[] = {
      "",                                  // empty line
      "{not json",                         // parse error
      "[1,2,3]",                           // not an object
      "{}",                                // missing op
      R"({"op":42})",                      // op not a string
      R"({"op":"frobnicate"})",            // unknown op
      R"({"op":"admit"})",                 // no tasks
      R"({"op":"admit","tasks":[]})",      // empty tasks
      R"({"op":"admit","tasks":[{"period":0.01}]})",   // missing wcet
      R"({"op":"admit","tasks":[{"period":-1,"wcet":0.1}]})",  // invalid
      R"({"op":"batch"})",                 // no queries
      R"({"op":"batch","queries":7})",     // queries not an array
  };
  for (const char* line : bad) {
    const std::string resp = h.handle(line);
    EXPECT_EQ(resp.rfind(R"({"ok":false,"error":)", 0), 0u)
        << "input: " << line << " -> " << resp;
    // Every error is itself valid JSON (the writer escapes the message).
    EXPECT_NO_THROW((void)parse_json(resp)) << resp;
  }
}

TEST(Protocol, AdmitAnswersOverTheWireShape) {
  ProtocolHandler h;
  const std::string resp = h.handle(
      std::string(R"({"op":"admit","id":3,)") + kCncTasksJson + "}");
  const JsonValue v = parse_json(resp);
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_TRUE(v.find("admitted")->boolean);
  EXPECT_NEAR(v.find("utilization")->number, 0.2458, 1e-3);
  EXPECT_GT(v.find("static_speed")->number, 0.0);
  EXPECT_EQ(v.find("id")->number, 3.0);
}

TEST(Protocol, AdmitAcceptsTasksCsv) {
  ProtocolHandler h;
  const std::string resp = h.handle(
      R"({"op":"admit","tasks_csv":"name,period,deadline,wcet,bcet,phase\n)"
      R"(a,0.01,0.01,0.002,0.002,0\nb,0.02,0.02,0.004,0.004,0\n"})");
  const JsonValue v = parse_json(resp);
  ASSERT_TRUE(v.find("ok")->boolean) << resp;
  EXPECT_TRUE(v.find("admitted")->boolean);
  EXPECT_NEAR(v.find("utilization")->number, 0.4, 1e-9);
}

TEST(Protocol, PartitionedAdmitReportsPlacement) {
  ProtocolHandler h;
  const std::string resp = h.handle(
      std::string(R"({"op":"admit","cores":2,"partition":"wf",)") +
      kCncTasksJson + "}");
  const JsonValue v = parse_json(resp);
  ASSERT_TRUE(v.find("ok")->boolean) << resp;
  const JsonValue* placement = v.find("placement");
  ASSERT_NE(placement, nullptr);
  EXPECT_TRUE(placement->find("feasible")->boolean);
  EXPECT_EQ(placement->find("core_of")->array.size(), 3u);
  EXPECT_EQ(placement->find("core_utilization")->array.size(), 2u);
}

TEST(Protocol, ShutdownSetsTheFlag) {
  ProtocolHandler h;
  bool shutdown = false;
  const std::string resp = h.handle(R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_EQ(resp, R"({"ok":true,"op":"shutdown"})");
  // Other ops leave the flag alone.
  shutdown = false;
  (void)h.handle(R"({"op":"ping"})", &shutdown);
  EXPECT_FALSE(shutdown);
}

TEST(Protocol, StatsReportSessionCounters) {
  ProtocolHandler h;
  (void)h.handle(std::string(R"({"op":"admit",)") + kCncTasksJson + "}");
  const JsonValue v = parse_json(h.handle(R"({"op":"stats"})"));
  const JsonValue* session = v.find("session");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->find("admit_queries")->number, 1.0);
  EXPECT_EQ(session->find("admitted")->number, 1.0);
}

/// The protocol's central determinism contract, checked both serially and
/// through the thread-pool fan-out: batch element i is byte-identical to
/// the response the same query gets on its own.
TEST(Protocol, BatchElementsAreByteIdenticalToSingles) {
  const std::vector<std::string> queries = {
      R"({"op":"ping","id":1})",
      std::string(R"({"op":"admit","id":2,)") + kCncTasksJson + "}",
      std::string(R"({"op":"admit","id":3,"cores":2,)") + kCncTasksJson +
          "}",
      R"({"op":"admit","id":4,"tasks":[{"period":0.01,"wcet":0.009},)"
      R"({"period":0.01,"wcet":0.009}]})",          // rejected
      R"({"op":"admit"})",                          // per-query error
      std::string(R"({"op":"plan","id":6,"governors":["ccEDF"],)"
                  R"("length":0.05,)") +
          kCncTasksJson + "}",
  };
  std::string batch = R"({"op":"batch","id":99,"queries":[)";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) batch.push_back(',');
    batch += queries[i];
  }
  batch += "]}";

  // Reference: each query answered singly by a fresh-but-shared handler.
  ProtocolHandler ref;
  std::vector<std::string> singles;
  for (const std::string& q : queries) singles.push_back(ref.handle(q));

  util::ThreadPool pool(4);
  ProtocolHandler pooled({&pool, {}});
  ProtocolHandler serial;  // no pool: inline loop
  for (ProtocolHandler* h : {&pooled, &serial}) {
    const std::string resp = h->handle(batch);
    const JsonValue v = parse_json(resp);
    ASSERT_TRUE(v.find("ok")->boolean) << resp;
    EXPECT_EQ(v.find("id")->number, 99.0);
    EXPECT_EQ(v.find("n")->number, static_cast<double>(queries.size()));
    const JsonValue* results = v.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(obs::write_json(results->array[i]), singles[i])
          << "query " << i;
    }
  }
}

TEST(Protocol, BatchSurvivesAShutDownPool) {
  util::ThreadPool pool(2);
  pool.shutdown();
  ProtocolHandler h({&pool, {}});
  const std::string resp = h.handle(
      R"({"op":"batch","queries":[{"op":"ping"},{"op":"ping"}]})");
  const JsonValue v = parse_json(resp);
  ASSERT_TRUE(v.find("ok")->boolean) << resp;
  ASSERT_EQ(v.find("results")->array.size(), 2u);
}

}  // namespace
}  // namespace dvs::svc
