// Cross-validation between the analytical models (sched/) and the
// discrete-event simulator (sim/): independent implementations of the
// same theory must agree.
#include <gtest/gtest.h>

#include "core/no_dvs.hpp"
#include "core/registry.hpp"
#include "sched/analysis.hpp"
#include "sched/fixed_priority.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

using task::make_task;
using task::TaskSet;

TEST(CrossValidation, SimulatedFpResponseTimesMatchRta) {
  // Synchronous release (all phases 0) is the fixed-priority critical
  // instant: the first job of every task attains the analytical
  // worst-case response time, and no later job exceeds it.
  TaskSet ts("rta");
  ts.add(make_task(0, "a", 4.0, 1.0));
  ts.add(make_task(1, "b", 6.0, 2.0));
  ts.add(make_task(2, "c", 12.0, 3.0));
  const auto rta =
      sched::response_times(ts, sched::deadline_monotonic_priorities(ts));
  ASSERT_TRUE(rta.has_value());

  const auto workload = task::constant_ratio_model(1.0);
  core::NoDvsGovernor g;
  sim::SimOptions opts;
  opts.length = 48.0;  // several hyperperiods
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  opts.record_jobs = true;
  const auto r =
      sim::simulate(ts, *workload, cpu::ideal_processor(), g, opts);

  ASSERT_EQ(r.worst_response.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Observed worst response equals the analytical bound at the critical
    // instant (within floating-point tolerance).
    EXPECT_NEAR(r.worst_response[i], (*rta)[i], 1e-9) << ts[i].name;
  }
  // The first job of each task individually attains the bound.
  for (const auto& j : r.jobs) {
    if (j.index == 0) {
      EXPECT_NEAR(j.completion - j.release,
                  (*rta)[static_cast<std::size_t>(j.task_id)], 1e-9);
    }
  }
}

TEST(CrossValidation, SimulatedFpResponsesNeverExceedRtaOnRandomSets) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = 5;
  cfg.total_utilization = 0.6;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.grid_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(900 + seed);
    const auto ts = task::generate_task_set(cfg, rng);
    const auto rta =
        sched::response_times(ts, sched::deadline_monotonic_priorities(ts));
    ASSERT_TRUE(rta.has_value());
    const auto workload = task::constant_ratio_model(1.0);
    core::NoDvsGovernor g;
    sim::SimOptions opts;
    opts.length = 2.0;
    opts.policy = sim::SchedulingPolicy::kFixedPriority;
    const auto r =
        sim::simulate(ts, *workload, cpu::ideal_processor(), g, opts);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_LE(r.worst_response[i], (*rta)[i] + 1e-9)
          << "seed " << seed << " task " << i;
    }
  }
}

TEST(CrossValidation, EdfAtMinimumConstantSpeedIsExactlyTight) {
  // Running at the analytical minimum constant speed with full-WCET jobs
  // must meet all deadlines; running 2% below it must not.
  TaskSet ts("tight");
  ts.add(make_task(0, "a", 0.01, 0.004));
  ts.add(make_task(1, "b", 0.025, 0.01));  // U = 0.8
  const double s = sched::minimum_constant_speed(ts);
  const auto workload = task::constant_ratio_model(1.0);

  class FixedSpeed final : public sim::Governor {
   public:
    explicit FixedSpeed(double a) : a_(a) {}
    double select_speed(const sim::Job&, const sim::SimContext&) override {
      return a_;
    }
    std::string name() const override { return "fixed"; }
    double a_;
  };

  sim::SimOptions opts;
  opts.length = 1.0;
  FixedSpeed at_bound(s);
  const auto ok =
      sim::simulate(ts, *workload, cpu::ideal_processor(), at_bound, opts);
  EXPECT_EQ(ok.deadline_misses, 0);

  FixedSpeed below(s * 0.98);
  const auto bad =
      sim::simulate(ts, *workload, cpu::ideal_processor(), below, opts);
  EXPECT_GT(bad.deadline_misses, 0);
}

TEST(CrossValidation, FpMinimumSpeedIsExactlyTightToo) {
  TaskSet ts("fp-tight");
  ts.add(make_task(0, "a", 2.0, 0.6));
  ts.add(make_task(1, "b", 5.0, 1.5));
  const double s = sched::minimum_constant_speed_fp(ts);
  const auto workload = task::constant_ratio_model(1.0);

  class FixedSpeed final : public sim::Governor {
   public:
    explicit FixedSpeed(double a) : a_(a) {}
    double select_speed(const sim::Job&, const sim::SimContext&) override {
      return a_;
    }
    std::string name() const override { return "fixed"; }
    double a_;
  };

  sim::SimOptions opts;
  opts.length = 50.0;
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  FixedSpeed at_bound(s);
  const auto ok =
      sim::simulate(ts, *workload, cpu::ideal_processor(), at_bound, opts);
  EXPECT_EQ(ok.deadline_misses, 0);

  FixedSpeed below(s * 0.97);
  const auto bad =
      sim::simulate(ts, *workload, cpu::ideal_processor(), below, opts);
  EXPECT_GT(bad.deadline_misses, 0);
}

TEST(GoldenRegression, PinnedEnergiesForFixedSeed) {
  // Regression anchors: a deliberate behavioral change to the simulator
  // or a governor will move these numbers — update them consciously.
  task::GeneratorConfig cfg;
  cfg.n_tasks = 5;
  cfg.total_utilization = 0.7;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  util::Rng rng(123456);
  const auto ts = task::generate_task_set(cfg, rng);
  const auto workload = task::uniform_model(123456);
  sim::SimOptions opts;
  opts.length = 1.0;

  auto energy = [&](const char* name) {
    auto g = core::make_governor(name);
    return sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts)
        .total_energy();
  };
  const double nodvs = energy("noDVS");
  EXPECT_GT(nodvs, 0.0);
  // Ratios are more stable anchors than absolute joule-equivalents.
  EXPECT_NEAR(energy("staticEDF") / nodvs, 0.49, 0.01);
  const double lpseh = energy("lpSEH") / nodvs;
  const double ccedf = energy("ccEDF") / nodvs;
  EXPECT_GT(lpseh, 0.1);
  EXPECT_LT(lpseh, 0.8);
  EXPECT_GT(ccedf, 0.1);
  EXPECT_LT(ccedf, 0.8);
  // Determinism: the identical run reproduces bit-for-bit.
  EXPECT_DOUBLE_EQ(energy("lpSEH"), energy("lpSEH"));
}

}  // namespace
}  // namespace dvs
