#include "task/trace_workload.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/no_dvs.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

Task probe() { return make_task(0, "p", 0.1, 0.04, 0.004); }

TEST(TraceModel, ReplaysSamplesInOrder) {
  const auto m = trace_model({{0.01, 0.02, 0.03}});
  const Task t = probe();
  EXPECT_DOUBLE_EQ(m->draw(t, 0), 0.01);
  EXPECT_DOUBLE_EQ(m->draw(t, 1), 0.02);
  EXPECT_DOUBLE_EQ(m->draw(t, 2), 0.03);
}

TEST(TraceModel, CyclesWhenTraceIsShort) {
  const auto m = trace_model({{0.01, 0.02}});
  const Task t = probe();
  EXPECT_DOUBLE_EQ(m->draw(t, 2), 0.01);
  EXPECT_DOUBLE_EQ(m->draw(t, 5), 0.02);
}

TEST(TraceModel, ClampsToLegalBand) {
  const auto m = trace_model({{0.0001, 9.0}});
  const Task t = probe();
  EXPECT_DOUBLE_EQ(m->draw(t, 0), t.bcet);  // below bcet -> bcet
  EXPECT_DOUBLE_EQ(m->draw(t, 1), t.wcet);  // above wcet -> wcet
}

TEST(TraceModel, MissingTraceFallsBackToWcet) {
  const auto m = trace_model({});
  const Task t = probe();
  EXPECT_DOUBLE_EQ(m->draw(t, 0), t.wcet);
  const auto empty = trace_model({{}});
  EXPECT_DOUBLE_EQ(empty->draw(t, 0), t.wcet);
}

TEST(TraceModel, RatioVariantScalesByWcet) {
  const auto m = trace_ratio_model({{0.5, 0.25}});
  const Task t = probe();
  EXPECT_DOUBLE_EQ(m->draw(t, 0), 0.02);
  EXPECT_DOUBLE_EQ(m->draw(t, 1), 0.01);
}

TEST(TraceModel, RejectsNegativeSamples) {
  EXPECT_THROW((void)trace_model({{-0.5}}), ContractError);
}

TEST(TraceCsv, ParsesRowsPerTask) {
  std::istringstream in(
      "# comment\n"
      "0,0.5\n"
      "\n"
      "1,0.25\n"
      "0,0.75\n");
  const auto traces = load_trace_csv(in, 2);
  ASSERT_EQ(traces.size(), 2u);
  ASSERT_EQ(traces[0].size(), 2u);
  EXPECT_DOUBLE_EQ(traces[0][0], 0.5);
  EXPECT_DOUBLE_EQ(traces[0][1], 0.75);
  ASSERT_EQ(traces[1].size(), 1u);
  EXPECT_DOUBLE_EQ(traces[1][0], 0.25);
}

TEST(TraceCsv, RejectsMalformedInput) {
  std::istringstream bad_id("x,0.5\n");
  EXPECT_THROW((void)load_trace_csv(bad_id, 1), ContractError);
  std::istringstream out_of_range("5,0.5\n");
  EXPECT_THROW((void)load_trace_csv(out_of_range, 1), ContractError);
  std::istringstream negative("0,-0.5\n");
  EXPECT_THROW((void)load_trace_csv(negative, 1), ContractError);
  std::istringstream missing_value("0\n");
  EXPECT_THROW((void)load_trace_csv(missing_value, 1), ContractError);
}

TEST(TraceModel, DrivesASimulationDeterministically) {
  TaskSet ts("traced");
  ts.add(make_task(0, "a", 0.1, 0.04, 0.004));
  const auto m = trace_ratio_model({{0.25, 0.5, 1.0}});
  core::NoDvsGovernor g;
  sim::SimOptions opts;
  opts.length = 0.9;  // 9 jobs -> trace cycles three times
  opts.record_jobs = true;
  const auto r =
      sim::simulate(ts, *m, cpu::ideal_processor(), g, opts);
  ASSERT_EQ(r.jobs.size(), 9u);
  EXPECT_DOUBLE_EQ(r.jobs[0].actual, 0.01);
  EXPECT_DOUBLE_EQ(r.jobs[1].actual, 0.02);
  EXPECT_DOUBLE_EQ(r.jobs[2].actual, 0.04);
  EXPECT_DOUBLE_EQ(r.jobs[3].actual, 0.01);
  EXPECT_EQ(r.deadline_misses, 0);
}

}  // namespace
}  // namespace dvs::task
