// Allocation regression guard for the hot path (docs/PERFORMANCE.md).
//
// The whole binary counts ::operator new calls.  A simulation's allocation
// cost must be dominated by up-front reservation: growing the simulated
// length 11x (hundreds of extra jobs, thousands of extra governor
// decisions) may add only a handful of allocations (extra job-record
// slabs, a larger trace reserve) — a fraction of an allocation per extra
// job.  Any per-event allocation creeping back into the engine or a
// governor's decision path multiplies with the job count and fails the
// bound immediately.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "core/registry.hpp"
#include "obs/audit.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dvs {
namespace {

// 3 tasks, hyperperiod 0.1 s: 8 + 2 + 1 = 11 jobs per hyperperiod.
task::TaskSet small_set() {
  task::TaskSet ts("alloc");
  ts.add(task::make_task(0, "a", 0.0125, 0.004, 0.0008));
  ts.add(task::make_task(1, "b", 0.05, 0.012, 0.0024));
  ts.add(task::make_task(2, "c", 0.1, 0.02, 0.004));
  return ts;
}

struct RunCost {
  std::uint64_t allocations = 0;
  long long jobs = 0;
};

RunCost measure(const std::string& governor, Time length, bool audited) {
  const auto ts = small_set();
  const auto workload = task::uniform_model(42);
  const cpu::Processor proc = cpu::ideal_processor();
  auto gov = core::make_governor(governor);
  obs::DecisionAudit audit;
  sim::SimOptions opts;
  opts.length = length;
  if (audited) opts.audit = &audit;

  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  const auto r = sim::simulate(ts, *workload, proc, *gov, opts);
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  return {after - before, r.jobs_released};
}

class AllocRegression : public ::testing::TestWithParam<const char*> {};

TEST_P(AllocRegression, SteadyStateIsAllocationFree) {
  // Warm up allocator pools, lazily-initialized statics, etc.
  (void)measure(GetParam(), 0.1, /*audited=*/false);

  const RunCost one = measure(GetParam(), 0.1, /*audited=*/false);
  const RunCost eleven = measure(GetParam(), 1.1, /*audited=*/false);
  const long long extra_jobs = eleven.jobs - one.jobs;
  ASSERT_GE(extra_jobs, 100);  // the long run really is ~10 hyperperiods
  // 11x the events may cost a few extra up-front allocations (job-record
  // slabs are 256 jobs each, and the slack kernel's job store + skip-ahead
  // tree double their capacity O(log n) times on the way to steady state),
  // never per-event ones — those would show up hundreds at a time.
  const std::uint64_t extra_allocs =
      eleven.allocations > one.allocations
          ? eleven.allocations - one.allocations
          : 0;
  EXPECT_LE(extra_allocs, 24u)
      << GetParam() << ": " << extra_allocs << " allocations for "
      << extra_jobs << " extra jobs";
}

TEST_P(AllocRegression, SteadyStateIsAllocationFreeWhenAudited) {
  (void)measure(GetParam(), 0.1, /*audited=*/true);
  const RunCost one = measure(GetParam(), 0.1, /*audited=*/true);
  const RunCost eleven = measure(GetParam(), 1.1, /*audited=*/true);
  ASSERT_GE(eleven.jobs - one.jobs, 100);
  const std::uint64_t extra_allocs =
      eleven.allocations > one.allocations
          ? eleven.allocations - one.allocations
          : 0;
  // The audit adds its own reserved vectors (records, chain, open table);
  // still O(1) growth, not O(jobs).
  EXPECT_LE(extra_allocs, 24u);
}

INSTANTIATE_TEST_SUITE_P(Governors, AllocRegression,
                         ::testing::Values("noDVS", "staticEDF", "ccEDF",
                                           "laEDF", "DRA", "lpSEH", "lpSEH-h",
                                           "uniformSlack"));

}  // namespace
}  // namespace dvs
