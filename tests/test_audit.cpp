// The governor decision audit: record/backfill semantics, the slack-error
// histograms of the analysis governors, the purely-observational contract,
// and thread-count independence of audited sweeps (DESIGN.md §8).
#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs::obs {
namespace {

TEST(DecisionAudit, BackfillsRealizedSlackIntoEveryDecisionOfTheJob) {
  DecisionAudit audit;
  Decision d;
  d.task_id = 1;
  d.job_index = 7;
  d.estimated_slack = 0.5;
  d.at = 0.0;
  audit.decision(d);
  d.at = 1.0;  // same job dispatched again after a preemption
  audit.decision(d);
  audit.complete(1, 7, 0.75);
  ASSERT_EQ(audit.records().size(), 2u);
  EXPECT_DOUBLE_EQ(audit.records()[0].realized_slack, 0.75);
  EXPECT_DOUBLE_EQ(audit.records()[1].realized_slack, 0.75);
}

TEST(DecisionAudit, AccuracyCountsOnlyFullyObservedDecisions) {
  DecisionAudit audit;
  Decision with_estimate;
  with_estimate.task_id = 0;
  with_estimate.job_index = 0;
  with_estimate.estimated_slack = 1.0;
  audit.decision(with_estimate);

  Decision no_estimate;  // NaN estimate: recorded but never audited
  no_estimate.task_id = 0;
  no_estimate.job_index = 1;
  audit.decision(no_estimate);

  Decision never_completes;
  never_completes.task_id = 0;
  never_completes.job_index = 2;
  never_completes.estimated_slack = 2.0;
  audit.decision(never_completes);

  audit.complete(0, 0, 1.25);
  audit.complete(0, 1, 0.5);

  const SlackAccuracy acc = audit.accuracy();
  EXPECT_EQ(acc.decisions, 3);
  EXPECT_EQ(acc.audited, 1);
  EXPECT_DOUBLE_EQ(acc.bias(), 0.25);
  EXPECT_DOUBLE_EQ(acc.mae(), 0.25);
  EXPECT_DOUBLE_EQ(acc.min_error, 0.25);
  EXPECT_DOUBLE_EQ(acc.max_error, 0.25);
}

TEST(SlackAccuracy, MergeIsExact) {
  SlackAccuracy a;
  a.decisions = 2;
  a.add_error(0.5);
  SlackAccuracy b;
  b.decisions = 3;
  b.add_error(-0.25);
  b.add_error(1.0);

  SlackAccuracy merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.decisions, 5);
  EXPECT_EQ(merged.audited, 3);
  EXPECT_DOUBLE_EQ(merged.sum_error, 0.5 - 0.25 + 1.0);
  EXPECT_DOUBLE_EQ(merged.sum_abs_error, 0.5 + 0.25 + 1.0);
  EXPECT_DOUBLE_EQ(merged.min_error, -0.25);
  EXPECT_DOUBLE_EQ(merged.max_error, 1.0);
  // Merging an empty summary is the identity.
  merged.merge(SlackAccuracy{});
  EXPECT_EQ(merged.audited, 3);
  EXPECT_DOUBLE_EQ(merged.min_error, -0.25);
}

/// One simulation with full observability attached.
struct ObservedRun {
  sim::SimResult result;
  MetricsRegistry metrics;
  SlackAccuracy accuracy;
};

ObservedRun observe(const std::string& governor_name) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(2002);
  auto governor = core::make_governor(governor_name);
  ObservedRun run;
  DecisionAudit audit;
  sim::SimOptions opts;
  opts.length = 0.1;
  opts.metrics = &run.metrics;
  opts.audit = &audit;
  run.result = sim::simulate(ts, *workload, cpu::ideal_processor(), *governor,
                             opts);
  run.accuracy = audit.accuracy();
  return run;
}

TEST(AuditedSimulation, LpSehErrorHistogramIsPopulatedAndNonDegenerate) {
  ObservedRun run = observe("lpSEH");
  ASSERT_GT(run.accuracy.audited, 50);
  const Histogram* h = run.metrics.find_histogram("slack_error_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->samples(), run.accuracy.audited);
  // Non-degenerate: the errors spread over several buckets rather than
  // collapsing into one.
  EXPECT_GE(h->nonzero_buckets(), 3u);
}

TEST(AuditedSimulation, DraErrorHistogramIsPopulatedAndNonDegenerate) {
  ObservedRun run = observe("DRA");
  ASSERT_GT(run.accuracy.audited, 50);
  const Histogram* h = run.metrics.find_histogram("slack_error_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->samples(), run.accuracy.audited);
  EXPECT_GE(h->nonzero_buckets(), 3u);
}

TEST(AuditedSimulation, NoDvsRecordsDecisionsButExposesNoEstimate) {
  ObservedRun run = observe("noDVS");
  EXPECT_GT(run.accuracy.decisions, 0);
  EXPECT_EQ(run.accuracy.audited, 0);
}

TEST(AuditedSimulation, CoreMetricsArePopulated) {
  ObservedRun run = observe("lpSEH");
  const Counter* dispatches = run.metrics.find_counter("dispatches");
  ASSERT_NE(dispatches, nullptr);
  EXPECT_GT(dispatches->value(), 0);
  const Histogram* residency = run.metrics.find_histogram("speed_residency_s");
  ASSERT_NE(residency, nullptr);
  // Residency weight is seconds of busy time: it must sum to the result's.
  EXPECT_NEAR(residency->weight_sum(), run.result.busy_time, 1e-9);
  const Counter* preempts = run.metrics.find_counter("preemptions");
  ASSERT_NE(preempts, nullptr);
  EXPECT_EQ(preempts->value(), run.result.preemptions);
}

TEST(AuditedSimulation, ObservabilityNeverChangesTheSimulation) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(7);
  sim::SimOptions bare_opts;
  bare_opts.length = 0.1;
  auto bare_gov = core::make_governor("lpSEH");
  const sim::SimResult bare =
      sim::simulate(ts, *workload, cpu::ideal_processor(), *bare_gov,
                    bare_opts);

  MetricsRegistry metrics;
  DecisionAudit audit;
  sim::SimOptions obs_opts;
  obs_opts.length = 0.1;
  obs_opts.metrics = &metrics;
  obs_opts.audit = &audit;
  auto obs_gov = core::make_governor("lpSEH");
  const sim::SimResult observed =
      sim::simulate(ts, *workload, cpu::ideal_processor(), *obs_gov, obs_opts);

  // Bit-identical, not merely close: observability is read-only.
  EXPECT_EQ(bare.busy_energy, observed.busy_energy);
  EXPECT_EQ(bare.idle_energy, observed.idle_energy);
  EXPECT_EQ(bare.transition_energy, observed.transition_energy);
  EXPECT_EQ(bare.busy_time, observed.busy_time);
  EXPECT_EQ(bare.idle_time, observed.idle_time);
  EXPECT_EQ(bare.jobs_released, observed.jobs_released);
  EXPECT_EQ(bare.jobs_completed, observed.jobs_completed);
  EXPECT_EQ(bare.deadline_misses, observed.deadline_misses);
  EXPECT_EQ(bare.speed_switches, observed.speed_switches);
  EXPECT_EQ(bare.preemptions, observed.preemptions);
  EXPECT_EQ(bare.average_speed, observed.average_speed);
  EXPECT_EQ(bare.per_task_energy, observed.per_task_energy);
  EXPECT_EQ(bare.worst_response, observed.worst_response);
}

exp::CaseBuilder sweep_builder() {
  return [](double u, std::size_t, std::uint64_t seed) {
    task::GeneratorConfig gen;
    gen.n_tasks = 4;
    gen.total_utilization = u;
    gen.period_min = 0.02;
    gen.period_max = 0.1;
    util::Rng rng(seed);
    return exp::Case{task::generate_task_set(gen, rng),
                     task::uniform_model(seed)};
  };
}

TEST(AuditedSweep, SlackAccuracyIsThreadCountIndependent) {
  exp::ExperimentConfig cfg;
  cfg.governors = {"lpSEH", "DRA", "lppsEDF"};
  cfg.processor = cpu::ideal_processor();
  cfg.replications = 3;
  cfg.sim_length = 0.3;
  cfg.audit_decisions = true;

  cfg.n_threads = 1;
  const auto serial = exp::run_sweep(cfg, "U", {0.5, 0.8}, sweep_builder());
  cfg.n_threads = 4;
  const auto parallel = exp::run_sweep(cfg, "U", {0.5, 0.8}, sweep_builder());

  ASSERT_EQ(serial.slack_accuracy.size(), parallel.slack_accuracy.size());
  bool any_audited = false;
  for (std::size_t g = 0; g < serial.slack_accuracy.size(); ++g) {
    const SlackAccuracy& a = serial.slack_accuracy[g];
    const SlackAccuracy& b = parallel.slack_accuracy[g];
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.audited, b.audited);
    EXPECT_EQ(a.sum_error, b.sum_error);  // exact, not approximate
    EXPECT_EQ(a.sum_abs_error, b.sum_abs_error);
    EXPECT_EQ(a.min_error, b.min_error);
    EXPECT_EQ(a.max_error, b.max_error);
    any_audited |= a.audited > 0;
  }
  EXPECT_TRUE(any_audited);
  // The audit rides along without perturbing the data aggregates.
  cfg.audit_decisions = false;
  cfg.n_threads = 1;
  const auto unaudited = exp::run_sweep(cfg, "U", {0.5, 0.8}, sweep_builder());
  ASSERT_EQ(unaudited.points.size(), serial.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    for (std::size_t g = 0; g < serial.governors.size(); ++g) {
      EXPECT_EQ(serial.points[p].normalized_energy[g].mean(),
                unaudited.points[p].normalized_energy[g].mean());
    }
  }
}

}  // namespace
}  // namespace dvs::obs
