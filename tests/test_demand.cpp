#include "core/demand.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TaskSet pair_set() {
  TaskSet ts("pair");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 25.0, 5.0));
  return ts;
}

TEST(TaskSetStats, AggregatesCorrectly) {
  const auto stats = TaskSetStats::of(pair_set());
  EXPECT_NEAR(stats.utilization, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(stats.wcet_sum, 7.0);
  EXPECT_DOUBLE_EQ(stats.max_deadline, 25.0);
  EXPECT_DOUBLE_EQ(stats.max_period, 25.0);
  ASSERT_TRUE(stats.hyperperiod.has_value());
  EXPECT_DOUBLE_EQ(*stats.hyperperiod, 50.0);
}

TEST(DemandHorizon, PicksTheCheapestSoundRule) {
  const auto stats = TaskSetStats::of(pair_set());
  // hyper rule: 0 + 25 + 50 = 75; busy rule: (0 + 7 + 25)/0.6 ~= 53.3.
  const auto h = demand_horizon(stats, 0.0, 0.0, 10.0, 64.0);
  EXPECT_FALSE(h.truncated);
  EXPECT_NEAR(h.end, 32.0 / 0.6, 1e-9);
}

TEST(DemandHorizon, CapTruncatesPathologicalWindows) {
  auto stats = TaskSetStats::of(pair_set());
  stats.hyperperiod = 1e6;      // pathological LCM
  stats.utilization = 1.0;      // busy rule unavailable
  const auto h = demand_horizon(stats, 0.0, 0.0, 10.0, 4.0);
  EXPECT_TRUE(h.truncated);
  EXPECT_DOUBLE_EQ(h.end, 4.0 * 25.0);
}

TEST(DemandHorizon, NeverEndsBeforeD0) {
  auto stats = TaskSetStats::of(pair_set());
  const auto h = demand_horizon(stats, 0.0, 0.0, 500.0, 1.0);
  EXPECT_GE(h.end, 500.0);
}

TEST(DemandSweeper, MergesActiveJobsAndFutureReleases) {
  FakeContext ctx(pair_set());
  ctx.add_job(0, 0, 0.0);            // deadline 10, rem 2
  ctx.add_job(1, 0, 0.0, 1.0);       // deadline 25, rem 4
  DemandSweeper sweeper(ctx, 30.0);

  Time d = 0.0;
  Work w = 0.0;
  // Checkpoints: 10 (active a), 20 (a's release at 10), 25 (active b),
  // 30 (a's release at 20).  b's release at 25 has deadline 50 > horizon.
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_DOUBLE_EQ(w, 2.0);
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(d, 20.0);
  EXPECT_DOUBLE_EQ(w, 2.0);
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(d, 25.0);
  EXPECT_DOUBLE_EQ(w, 4.0);
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(d, 30.0);
  EXPECT_DOUBLE_EQ(w, 2.0);
  EXPECT_FALSE(sweeper.next(d, w));
}

TEST(DemandSweeper, FoldsCoincidingDeadlines) {
  TaskSet ts("tie");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 10.0, 3.0));
  FakeContext ctx(std::move(ts));
  ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  DemandSweeper sweeper(ctx, 10.0);
  Time d = 0.0;
  Work w = 0.0;
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_DOUBLE_EQ(w, 5.0);
  EXPECT_FALSE(sweeper.next(d, w));
}

TEST(DemandSweeper, ChargesExtraPerJob) {
  FakeContext ctx(pair_set());
  ctx.add_job(0, 0, 0.0);
  DemandSweeper sweeper(ctx, 10.0, /*extra_per_job=*/0.5);
  Time d = 0.0;
  Work w = 0.0;
  ASSERT_TRUE(sweeper.next(d, w));
  EXPECT_DOUBLE_EQ(w, 2.5);
}

TEST(DemandSweeper, MatchesOfflineDemandBound) {
  // With all first jobs active at t = 0, cumulative sweeper demand equals
  // the textbook synchronous demand-bound function at every checkpoint.
  FakeContext ctx(pair_set());
  ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  DemandSweeper sweeper(ctx, 100.0);
  Time d = 0.0;
  Work w = 0.0;
  Work cumulative = 0.0;
  const auto ts = pair_set();
  int checkpoints = 0;
  while (sweeper.next(d, w)) {
    cumulative += w;
    Work dbf = 0.0;  // sum over tasks of (floor((d - D)/T) + 1) * C
    for (const auto& t : ts) {
      if (d + kTimeEps >= t.deadline) {
        dbf += (std::floor((d - t.deadline) / t.period + kTimeEps) + 1.0) *
               t.wcet;
      }
    }
    EXPECT_NEAR(cumulative, dbf, 1e-9) << "at checkpoint " << d;
    ++checkpoints;
  }
  EXPECT_GE(checkpoints, 10);
}

TEST(DemandContributions, MaterializedFormMatchesSweeper) {
  FakeContext ctx(pair_set());
  ctx.add_job(0, 0, 0.0);
  const auto list = demand_contributions(ctx, 40.0);
  DemandSweeper sweeper(ctx, 40.0);
  Time d = 0.0;
  Work w = 0.0;
  std::size_t i = 0;
  while (sweeper.next(d, w)) {
    ASSERT_LT(i, list.size());
    EXPECT_DOUBLE_EQ(list[i].deadline, d);
    EXPECT_DOUBLE_EQ(list[i].work, w);
    ++i;
  }
  EXPECT_EQ(i, list.size());
}

TEST(DemandSpeedFloor, SingleJobNeedsItsDensity) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  ctx.add_job(0, 0, 0.0);
  const auto stats = TaskSetStats::of(ctx.task_set());
  EXPECT_NEAR(demand_speed_floor(ctx, stats, 10.0, 64.0), 0.4, 1e-9);
}

TEST(DemandSpeedFloor, FutureBurstRaisesTheFloor) {
  // Running job J: rem 2, d0 = 20.  Task b floods right after d0: its job
  // (rel 5, deadline 15 < d0) requires work *before* d0 too.
  TaskSet ts("burst");
  ts.add(make_task(0, "a", 20.0, 2.0));
  auto b = make_task(1, "b", 10.0, 6.0);
  b.phase = 5.0;
  ts.add(b);
  FakeContext ctx(std::move(ts));
  ctx.add_job(0, 0, 0.0);
  const auto stats = TaskSetStats::of(ctx.task_set());
  const double floor = demand_speed_floor(ctx, stats, 20.0, 64.0);
  // J's own work (deadline 20) is not due at the d = 15 checkpoint, so:
  //   d = 15: 6/15 = 0.4;  d = 20 (= d0): 8/20 = 0.4;
  //   d = 25: (demand 14 - (25-20))/20 = 0.45   <- binding
  //   (b's second job squeezes the post-d0 full-speed phase).
  EXPECT_NEAR(floor, 0.45, 1e-9);
}

TEST(DemandSpeedFloor, FullUtilizationWorstCaseIsFullSpeed) {
  TaskSet ts("full");
  ts.add(make_task(0, "a", 10.0, 5.0));
  ts.add(make_task(1, "b", 10.0, 5.0));
  FakeContext ctx(std::move(ts));
  ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  const auto stats = TaskSetStats::of(ctx.task_set());
  EXPECT_DOUBLE_EQ(demand_speed_floor(ctx, stats, 10.0, 64.0), 1.0);
}

TEST(DemandSpeedFloor, VanishingWindowIsFullSpeed) {
  FakeContext ctx(pair_set());
  ctx.add_job(0, 0, 0.0);
  ctx.now_ = 10.0;
  const auto stats = TaskSetStats::of(ctx.task_set());
  EXPECT_DOUBLE_EQ(demand_speed_floor(ctx, stats, 10.0, 64.0), 1.0);
}

}  // namespace
}  // namespace dvs::core
