#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace dvs::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(HashU64, SameInputsSameOutput) {
  EXPECT_EQ(hash_u64(1, 2, 3), hash_u64(1, 2, 3));
}

TEST(HashU64, DiffersInEachCoordinate) {
  const auto base = hash_u64(1, 2, 3);
  EXPECT_NE(base, hash_u64(2, 2, 3));
  EXPECT_NE(base, hash_u64(1, 3, 3));
  EXPECT_NE(base, hash_u64(1, 2, 4));
}

TEST(HashU64, NoTrivialCollisionsOverGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 30; ++a) {
    for (std::uint64_t b = 0; b < 30; ++b) {
      seen.insert(hash_u64(a, b, 7));
    }
  }
  EXPECT_EQ(seen.size(), 900u);
}

TEST(HashUnit, InHalfOpenUnitInterval) {
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const double u = hash_unit(i, i * 31, 5);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashUnit, MeanIsNearHalf) {
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += hash_unit(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, ReproducibleFromSeed) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, UnitInRange) {
  Xoshiro256StarStar rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRespectsBounds) {
  Xoshiro256StarStar rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Xoshiro, UniformRejectsInvertedBounds) {
  Xoshiro256StarStar rng(3);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), ContractError);
}

TEST(Xoshiro, UniformIntCoversAllValues) {
  Xoshiro256StarStar rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 8));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 8);
}

TEST(Xoshiro, UniformIntSingleton) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Xoshiro, NormalMomentsAreSane) {
  Xoshiro256StarStar rng(6);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Xoshiro, NormalScalesMeanAndStddev) {
  Xoshiro256StarStar rng(7);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro, NormalRejectsNegativeStddev) {
  Xoshiro256StarStar rng(8);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), ContractError);
}

}  // namespace
}  // namespace dvs::util
