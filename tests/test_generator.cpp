#include "task/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

TEST(UUniFast, SharesSumToTarget) {
  util::Rng rng(1);
  for (double target : {0.1, 0.5, 0.9, 1.0}) {
    const auto u = uunifast(8, target, rng);
    EXPECT_EQ(u.size(), 8u);
    const double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, target, 1e-12);
    for (double x : u) EXPECT_GE(x, 0.0);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  util::Rng rng(2);
  const auto u = uunifast(1, 0.7, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUniFast, RejectsDegenerateInput) {
  util::Rng rng(3);
  EXPECT_THROW((void)uunifast(0, 0.5, rng), ContractError);
  EXPECT_THROW((void)uunifast(4, 0.0, rng), ContractError);
}

TEST(Generator, ProducesValidSetAtTargetUtilization) {
  GeneratorConfig cfg;
  cfg.n_tasks = 8;
  cfg.total_utilization = 0.75;
  util::Rng rng(7);
  const TaskSet ts = generate_task_set(cfg, rng, "g");
  EXPECT_EQ(ts.size(), 8u);
  EXPECT_NO_THROW(ts.validate());
  EXPECT_NEAR(ts.utilization(), 0.75, 1e-9);
}

TEST(Generator, PeriodsRespectRange) {
  GeneratorConfig cfg;
  cfg.period_min = 0.01;
  cfg.period_max = 0.5;
  util::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = generate_task_set(cfg, rng);
    for (const auto& t : ts) {
      EXPECT_GE(t.period, cfg.period_min - 1e-12);
      // grid snapping can round up by at most half a grid step
      EXPECT_LE(t.period, cfg.period_max + cfg.period_min * cfg.grid_fraction);
    }
  }
}

TEST(Generator, GridSnappingYieldsFiniteHyperperiods) {
  GeneratorConfig cfg;
  cfg.n_tasks = 4;
  cfg.period_min = 0.01;
  cfg.period_max = 0.08;
  cfg.grid_fraction = 0.5;  // coarse grid: 5 ms
  util::Rng rng(9);
  int finite = 0;
  for (int i = 0; i < 20; ++i) {
    if (generate_task_set(cfg, rng).hyperperiod()) ++finite;
  }
  EXPECT_EQ(finite, 20);
}

TEST(Generator, BcetRatioApplied) {
  GeneratorConfig cfg;
  cfg.bcet_ratio = 0.25;
  util::Rng rng(10);
  const TaskSet ts = generate_task_set(cfg, rng);
  for (const auto& t : ts) EXPECT_NEAR(t.bcet, 0.25 * t.wcet, 1e-12);
}

TEST(Generator, PerTaskUtilizationCapHolds) {
  GeneratorConfig cfg;
  cfg.n_tasks = 6;
  cfg.total_utilization = 0.9;
  cfg.max_task_utilization = 0.4;
  util::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = generate_task_set(cfg, rng);
    for (const auto& t : ts) EXPECT_LE(t.utilization(), 0.4 + 1e-12);
  }
}

TEST(Generator, DeterministicGivenSeed) {
  GeneratorConfig cfg;
  const auto a = generate_task_sets(cfg, 3, 99);
  const auto b = generate_task_sets(cfg, 3, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i][j].period, b[i][j].period);
      EXPECT_DOUBLE_EQ(a[i][j].wcet, b[i][j].wcet);
    }
  }
}

TEST(Generator, RejectsInvalidConfig) {
  util::Rng rng(1);
  GeneratorConfig cfg;
  cfg.total_utilization = 1.5;
  EXPECT_THROW((void)generate_task_set(cfg, rng), ContractError);
  cfg = {};
  cfg.period_min = 0.5;
  cfg.period_max = 0.1;
  EXPECT_THROW((void)generate_task_set(cfg, rng), ContractError);
  cfg = {};
  cfg.bcet_ratio = 0.0;
  EXPECT_THROW((void)generate_task_set(cfg, rng), ContractError);
  cfg = {};
  cfg.n_tasks = 0;
  EXPECT_THROW((void)generate_task_set(cfg, rng), ContractError);
}

}  // namespace
}  // namespace dvs::task
