// Property-based zero-miss fuzz harness for the partitioned backend (the
// tentpole's load-bearing guarantee): for EVERY registered EDF governor,
// EVERY bin-packing heuristic, and a few hundred seeded random task sets
// (U up to nearly M, n in [3, 30], M in [2, 8]), a set the partitioner
// ACCEPTS must simulate with ZERO deadline misses on every core — the
// uniprocessor hard real-time invariant, lifted to M cores.  A set the
// partitioner REJECTS must name the offending task.  Every assertion
// carries the full replay recipe (seed, M, n, U, heuristic, governor), so
// a failure reproduces with a one-liner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "mp/mp_sim.hpp"
#include "opt/yds.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

constexpr std::uint64_t kFuzzSalt = 0xE11;
constexpr std::uint64_t kSetsPerCell = 7;

struct FuzzCase {
  std::size_t n_cores;
  std::size_t n_tasks;
  double utilization;
  task::TaskSet task_set;
  task::ExecutionTimeModelPtr workload;
};

/// Derive one random case from `seed` alone: every dimension (M, n, U,
/// the set itself, the workload) is a pure function of the seed, so a
/// printed seed replays the exact case.
FuzzCase fuzz_case(std::uint64_t seed) {
  util::Rng rng(seed);
  FuzzCase c;
  c.n_cores = static_cast<std::size_t>(rng.uniform_int(2, 8));
  c.n_tasks = static_cast<std::size_t>(rng.uniform_int(3, 30));
  // U in (0.2, min(0.95 * M, 0.5 * n)]: up to nearly the platform
  // capacity, but bounded so UUniFast can honour the per-task cap.
  const double u_max =
      std::min(0.95 * static_cast<double>(c.n_cores),
               0.5 * static_cast<double>(c.n_tasks));
  c.utilization = 0.2 + (u_max - 0.2) * rng.unit();

  task::GeneratorConfig gen;
  gen.n_tasks = c.n_tasks;
  gen.total_utilization = c.utilization;
  gen.period_min = 0.01;
  gen.period_max = 0.16;
  gen.bcet_ratio = 0.1;
  gen.grid_fraction = 0.5;
  gen.allow_overload = c.utilization > 1.0;
  gen.max_task_utilization = 0.9;
  util::Rng set_rng(seed ^ kFuzzSalt);
  c.task_set = task::generate_task_set(gen, set_rng, "fuzz");
  c.workload = task::uniform_model(seed);
  return c;
}

using FuzzParam = std::tuple<std::string /*heuristic*/,
                             std::string /*governor*/>;

class MpZeroMiss : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MpZeroMiss, AcceptedPartitionsNeverMissADeadline) {
  const auto& [heuristic_name_, governor_name] = GetParam();
  const mp::PartitionHeuristic h = mp::heuristic_by_name(heuristic_name_);
  const std::uint64_t cell =
      util::hash_u64(kFuzzSalt, std::hash<std::string>{}(heuristic_name_),
                     std::hash<std::string>{}(governor_name));
  std::size_t accepted = 0;
  for (std::uint64_t rep = 0; rep < kSetsPerCell; ++rep) {
    const std::uint64_t seed = util::hash_u64(cell, rep);
    const FuzzCase c = fuzz_case(seed);
    const std::string replay =
        "replay: seed=" + std::to_string(seed) + " M=" +
        std::to_string(c.n_cores) + " n=" + std::to_string(c.n_tasks) +
        " U=" + std::to_string(c.utilization) + " heuristic=" +
        heuristic_name_ + " governor=" + governor_name;
    SCOPED_TRACE(replay);

    const mp::PartitionResult pr =
        mp::partition_task_set(c.task_set, c.n_cores, h);
    if (!pr.feasible) {
      // A rejection must identify the offending task, so the harness (and
      // a human) can see WHY the set was dropped.
      EXPECT_GE(pr.rejected_task, 0);
      EXPECT_LT(static_cast<std::size_t>(pr.rejected_task),
                c.task_set.size());
      EXPECT_NE(pr.error.find(
                    c.task_set[static_cast<std::size_t>(pr.rejected_task)]
                        .name),
                std::string::npos)
          << pr.error;
      continue;
    }
    ++accepted;

    mp::MpOptions o;
    o.n_cores = c.n_cores;
    o.heuristic = h;
    o.length = 0.3;
    const mp::MpResult r = mp::simulate_mp(
        c.task_set, c.workload, cpu::ideal_processor(),
        [&governor_name] { return core::make_governor(governor_name); }, o);
    EXPECT_EQ(r.total.deadline_misses, 0) << replay;
    for (std::size_t core = 0; core < r.cores.size(); ++core) {
      EXPECT_EQ(r.cores[core].deadline_misses, 0)
          << replay << " (core " << core << ")";
    }
    // Accounting closes: every released job completed or was truncated at
    // the horizon, summed across cores.
    EXPECT_EQ(r.total.jobs_completed + r.total.jobs_truncated,
              r.total.jobs_released)
        << replay;
  }
  // The grid must actually exercise the zero-miss property, not reject
  // everything: most sampled sets fit (U stays below 0.95 * M).
  EXPECT_GE(accepted, kSetsPerCell / 2) << "fuzz grid rejected too much";
}

TEST(MpOracleBound, PerCoreBoundsSumAndNoGovernorUndercutsThem) {
  // The partitioned optimum decomposes over cores (no migration), so the
  // case bound the harness reports must equal the sum of each populated
  // core's own YDS bound, and on idle-free ideal cores every governor's
  // total energy — summed across cores — must stay at or above it
  // (gap >= 1).  The simulated oracle governor itself must stay
  // zero-miss on every core.
  const cpu::Processor proc = cpu::ideal_processor();
  std::size_t checked = 0;
  for (std::uint64_t rep = 1; rep <= 4 && checked < 2; ++rep) {
    const std::uint64_t seed = util::hash_u64(kFuzzSalt, 0xACEu, rep);
    const FuzzCase c = fuzz_case(seed);
    const std::string replay =
        "replay: seed=" + std::to_string(seed) + " M=" +
        std::to_string(c.n_cores) + " n=" + std::to_string(c.n_tasks) +
        " U=" + std::to_string(c.utilization);
    SCOPED_TRACE(replay);
    const mp::MpPlan plan =
        mp::plan_mp(c.task_set, c.workload, c.n_cores,
                    mp::PartitionHeuristic::kWorstFit, 0.3);
    if (!plan.feasible()) continue;

    // Manual per-core sum, against the same remapped per-core workloads
    // the harness simulates with.
    double continuous = 0.0;
    double discrete = 0.0;
    bool all_feasible = true;
    for (std::size_t core = 0; core < plan.core_sets.size(); ++core) {
      if (plan.core_sets[core].empty()) continue;
      const opt::OracleBounds b = opt::oracle_bounds(
          plan.core_sets[core], *plan.core_workloads[core], proc,
          plan.length);
      all_feasible = all_feasible && b.feasible;
      continuous += b.continuous_energy;
      discrete += b.discrete_energy;
    }
    if (!all_feasible) continue;  // an over-packed core: no usable bound
    ++checked;

    exp::ExperimentConfig cfg = exp::default_config();
    cfg.n_cores = c.n_cores;
    cfg.partitioner = mp::PartitionHeuristic::kWorstFit;
    cfg.sim_length = 0.3;
    cfg.oracle = true;
    const exp::CaseOutcome outcome =
        exp::run_case({c.task_set, c.workload}, cfg);
    ASSERT_TRUE(outcome.bounds.valid());
    EXPECT_NEAR(outcome.bounds.continuous_energy, continuous, 1e-9);
    EXPECT_NEAR(outcome.bounds.discrete_energy, discrete, 1e-9);
    ASSERT_EQ(outcome.outcomes.back().governor, "oracle");
    for (const auto& g : outcome.outcomes) {
      SCOPED_TRACE("governor=" + g.governor);
      ASSERT_FALSE(g.failed()) << g.error;
      EXPECT_EQ(g.result.deadline_misses, 0);
      EXPECT_GE(g.gap_continuous, 1.0 - 1e-6);
      EXPECT_GE(g.gap_discrete, 1.0 - 1e-6);
    }
  }
  // The seed schedule must actually exercise the property.
  EXPECT_GE(checked, 1u) << "every sampled partition was rejected";
}

std::string param_name(const ::testing::TestParamInfo<FuzzParam>& info) {
  std::string name =
      std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristicsAllGovernors, MpZeroMiss,
    ::testing::Combine(::testing::Values("ff", "bf", "wf"),
                       ::testing::Values("noDVS", "staticEDF", "lppsEDF",
                                         "ccEDF", "laEDF", "DRA", "AGR",
                                         "lpSEH-h", "lpSEH",
                                         "uniformSlack")),
    param_name);

}  // namespace
}  // namespace dvs
