#include "task/benchmarks.hpp"

#include <gtest/gtest.h>

#include "sched/analysis.hpp"

namespace dvs::task {
namespace {

TEST(Benchmarks, InsShape) {
  const TaskSet ts = ins_task_set();
  EXPECT_EQ(ts.name(), "INS");
  EXPECT_EQ(ts.size(), 6u);
  EXPECT_NEAR(ts.utilization(), 0.89, 0.03);
  EXPECT_NO_THROW(ts.validate());
  EXPECT_TRUE(sched::edf_schedulable(ts));
}

TEST(Benchmarks, CncShape) {
  const TaskSet ts = cnc_task_set();
  EXPECT_EQ(ts.name(), "CNC");
  EXPECT_EQ(ts.size(), 8u);
  EXPECT_NEAR(ts.utilization(), 0.52, 0.03);
  EXPECT_TRUE(sched::edf_schedulable(ts));
}

TEST(Benchmarks, AvionicsShape) {
  const TaskSet ts = avionics_task_set();
  EXPECT_EQ(ts.name(), "Avionics");
  EXPECT_EQ(ts.size(), 17u);
  EXPECT_NEAR(ts.utilization(), 0.84, 0.03);
  EXPECT_TRUE(sched::edf_schedulable(ts));
}

TEST(Benchmarks, BcetRatioPropagates) {
  for (double r : {0.1, 0.5, 1.0}) {
    for (const auto& ts : embedded_task_sets(r)) {
      for (const auto& t : ts) {
        EXPECT_NEAR(t.bcet, r * t.wcet, 1e-12) << ts.name() << "/" << t.name;
      }
    }
  }
}

TEST(Benchmarks, HyperperiodsAreFinite) {
  for (const auto& ts : embedded_task_sets()) {
    EXPECT_TRUE(ts.hyperperiod().has_value()) << ts.name();
  }
}

TEST(Benchmarks, InsHyperperiodValue) {
  const auto h = ins_task_set().hyperperiod();
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(*h, 5.0, 1e-9);  // lcm(2.5, 40, 62.5, 1000, 1250) ms
}

TEST(Benchmarks, EmbeddedReturnsAllThree) {
  const auto sets = embedded_task_sets();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].name(), "INS");
  EXPECT_EQ(sets[1].name(), "CNC");
  EXPECT_EQ(sets[2].name(), "Avionics");
}

}  // namespace
}  // namespace dvs::task
