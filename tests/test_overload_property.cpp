// Property: an overloaded task set (U > 1) must never crash or hang any
// registered governor.  Misses are expected and recorded; speed requests
// must stay in range (enforced by fault::CheckedGovernor); the simulation
// must account for every released job.
#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "fault/checked_governor.hpp"
#include "opt/yds.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

TEST(OverloadProperty, GeneratorRejectsOverloadUnlessOptedIn) {
  task::GeneratorConfig cfg;
  cfg.total_utilization = 1.25;
  util::Rng rng(1);
  EXPECT_THROW((void)task::generate_task_set(cfg, rng), util::ContractError);
  cfg.allow_overload = true;
  const task::TaskSet ts = task::generate_task_set(cfg, rng);
  EXPECT_NEAR(ts.utilization(), 1.25, 1e-6);
  EXPECT_NO_THROW(ts.validate());
}

TEST(OverloadProperty, EveryGovernorSurvivesOverload) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = 6;
  cfg.allow_overload = true;
  cfg.period_min = 0.01;
  cfg.period_max = 0.1;

  const auto names = core::governor_names();
  ASSERT_FALSE(names.empty());

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // U in (1.0, 1.5]: guaranteed-infeasible sets.
    cfg.total_utilization = 1.0 + 0.1 * static_cast<double>(seed);
    util::Rng rng(seed);
    const task::TaskSet ts =
        task::generate_task_set(cfg, rng, "overload" + std::to_string(seed));
    // Every job consumes its full WCET: the overload is sustained, so
    // misses are guaranteed, not merely possible.
    const auto workload = task::constant_ratio_model(1.0);

    for (const auto& name : names) {
      SCOPED_TRACE("governor=" + name + " U=" +
                   std::to_string(cfg.total_utilization));
      auto governor = fault::checked(core::make_governor(name));
      sim::SimOptions opts;
      opts.length = 2.0;  // ~20+ periods of the longest task
      sim::SimResult r;
      // The property: no crash, no hang, no out-of-range speed.
      ASSERT_NO_THROW(r = sim::simulate(ts, *workload, cpu::ideal_processor(),
                                        *governor, opts));
      EXPECT_GT(r.jobs_released, 0);
      EXPECT_LE(r.jobs_completed, r.jobs_released);
      // Sustained overload must surface as recorded misses, not silence:
      // unfinished-at-end jobs with passed deadlines count as misses too.
      EXPECT_GT(r.deadline_misses, 0);
      EXPECT_GE(r.average_speed, 0.0);
      EXPECT_LE(r.average_speed, 1.0 + 1e-9);
      EXPECT_TRUE(std::isfinite(r.total_energy()));
      EXPECT_GE(r.total_energy(), 0.0);
    }
  }
}

TEST(OverloadProperty, OracleReportsSustainedOverloadAsInfeasible) {
  // Even a clairvoyant scheduler cannot meet deadlines when demand
  // outstrips capacity: under a sustained full-WCET workload at U > 1 the
  // YDS peak speed must exceed 1 and the bounds must come back
  // infeasible (and therefore unusable as a gap denominator).  A
  // feasible control set at the same horizon stays feasible, proving the
  // detection is not vacuous.
  task::GeneratorConfig cfg;
  cfg.n_tasks = 6;
  cfg.allow_overload = true;
  cfg.period_min = 0.01;
  cfg.period_max = 0.1;
  const auto workload = task::constant_ratio_model(1.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.total_utilization = 1.0 + 0.1 * static_cast<double>(seed);
    util::Rng rng(seed);
    const task::TaskSet ts =
        task::generate_task_set(cfg, rng, "overload" + std::to_string(seed));
    const opt::OracleBounds b =
        opt::oracle_bounds(ts, *workload, cpu::ideal_processor(), 2.0);
    EXPECT_FALSE(b.feasible) << "U=" << cfg.total_utilization;
    EXPECT_GT(b.max_speed, 1.0) << "U=" << cfg.total_utilization;
    EXPECT_FALSE(b.valid());
  }
  cfg.total_utilization = 0.8;
  cfg.allow_overload = false;
  util::Rng rng(99);
  const task::TaskSet control = task::generate_task_set(cfg, rng, "control");
  const opt::OracleBounds b =
      opt::oracle_bounds(control, *workload, cpu::ideal_processor(), 2.0);
  EXPECT_TRUE(b.feasible);
  EXPECT_TRUE(b.valid());
  EXPECT_LE(b.max_speed, 1.0 + 1e-9);
}

}  // namespace
}  // namespace dvs
