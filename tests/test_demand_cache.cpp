// DemandCache — the memoized checkpoint enumeration behind the
// allocation-free sweep (docs/ALGORITHMS.md, "Cache-invalidation
// invariants").  The cached DemandSweeper must emit exactly the checkpoint
// stream of the from-scratch construction, at every decision time, in any
// monotone (or rewinding) order of queries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/demand.hpp"
#include "fake_context.hpp"

namespace dvs::core {
namespace {

using dvs::testing::FakeContext;
using task::make_task;
using task::TaskSet;

TaskSet trio_set() {
  TaskSet ts("trio");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 25.0, 5.0));
  ts.add(make_task(2, "c", 40.0, 4.0));
  return ts;
}

/// Drain both sweepers and require identical (deadline, work) streams —
/// the bit-identity contract, checked with exact double equality.
void expect_same_stream(DemandSweeper& oracle, DemandSweeper& cached) {
  Time d1 = 0.0, d2 = 0.0;
  Work w1 = 0.0, w2 = 0.0;
  for (;;) {
    const bool more1 = oracle.next(d1, w1);
    const bool more2 = cached.next(d2, w2);
    ASSERT_EQ(more1, more2);
    if (!more1) return;
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(w1, w2);
  }
}

TEST(FirstStrictFutureRelease, IsTheMinimalStrictlyFutureIndex) {
  const auto ts = trio_set();
  for (const auto& task : ts) {
    for (const Time t : {0.0, 0.5, 9.999999, 10.0, 10.0 + 1e-12, 24.3,
                         39.999, 40.0, 123.456}) {
      const std::int64_t k = first_strict_future_release(task, t);
      EXPECT_GT(task.release_of(k), t + kTimeEps)
          << task.name << " t=" << t;
      if (k > 0) {
        EXPECT_LE(task.release_of(k - 1), t + kTimeEps)
            << task.name << " t=" << t << " (not minimal)";
      }
    }
  }
}

TEST(DemandCache, ColdStartMatchesOracle) {
  FakeContext ctx(trio_set());
  ctx.now_ = 3.0;
  ctx.add_job(0, 0, 0.0);
  DemandCache cache;
  DemandSweeper oracle(ctx, 60.0);
  DemandSweeper cached(ctx, 60.0, 0.0, cache);
  expect_same_stream(oracle, cached);
}

TEST(DemandCache, WarmAdvanceMatchesOracleAtEveryStep) {
  FakeContext ctx(trio_set());
  DemandCache cache;
  // Monotone times crossing several release boundaries of every task,
  // including exact boundary instants (the kTimeEps edge).
  const std::vector<Time> times{0.0, 1.0, 9.0, 10.0, 12.5, 20.0,
                                25.0, 26.0, 40.0, 55.0, 79.9, 80.0};
  for (const Time t : times) {
    ctx.now_ = t;
    ctx.clear_jobs();
    ctx.add_job(1, 0, 0.0);
    DemandSweeper oracle(ctx, t + 70.0);
    DemandSweeper cached(ctx, t + 70.0, 0.0, cache);
    expect_same_stream(oracle, cached);
  }
}

TEST(DemandCache, RepeatedQueriesAtTheSameInstantAgree) {
  FakeContext ctx(trio_set());
  ctx.now_ = 17.0;
  DemandCache cache;
  for (int i = 0; i < 3; ++i) {
    DemandSweeper oracle(ctx, 90.0);
    DemandSweeper cached(ctx, 90.0, 0.0, cache);
    expect_same_stream(oracle, cached);
  }
}

TEST(DemandCache, TimeRewindRecomputesFromScratch) {
  FakeContext ctx(trio_set());
  DemandCache cache;
  ctx.now_ = 50.0;
  { DemandSweeper warm(ctx, 120.0, 0.0, cache); }  // advance the cache
  ctx.now_ = 5.0;  // rewind (only test doubles do this)
  DemandSweeper oracle(ctx, 70.0);
  DemandSweeper cached(ctx, 70.0, 0.0, cache);
  expect_same_stream(oracle, cached);
}

TEST(DemandCache, InvalidateForgetsThePreviousRun) {
  FakeContext ctx(trio_set());
  DemandCache cache;
  ctx.now_ = 33.0;
  { DemandSweeper warm(ctx, 100.0, 0.0, cache); }
  cache.invalidate();
  ctx.now_ = 2.0;
  DemandSweeper oracle(ctx, 60.0);
  DemandSweeper cached(ctx, 60.0, 0.0, cache);
  expect_same_stream(oracle, cached);
}

TEST(DemandCache, CachedWithExtraPerJobMatchesOracle) {
  FakeContext ctx(trio_set());
  ctx.now_ = 11.0;
  ctx.add_job(0, 1, 10.0, 0.5);
  ctx.add_job(2, 0, 0.0);
  DemandCache cache;
  DemandSweeper oracle(ctx, 95.0, 0.25);
  DemandSweeper cached(ctx, 95.0, 0.25, cache);
  expect_same_stream(oracle, cached);
}

TEST(DemandSpeedFloor, CachedEqualsUncachedAcrossDecisions) {
  FakeContext ctx(trio_set());
  const auto stats = TaskSetStats::of(ctx.task_set());
  DemandCache cache;
  for (const Time t : {0.0, 4.0, 9.5, 10.0, 21.0, 37.0, 64.0}) {
    ctx.now_ = t;
    ctx.clear_jobs();
    auto& job = ctx.add_job(0, 0, t);
    const double plain = demand_speed_floor(ctx, stats, job.abs_deadline,
                                            64.0);
    const double cached = demand_speed_floor(ctx, stats, job.abs_deadline,
                                             64.0, &cache);
    EXPECT_EQ(plain, cached) << "t=" << t;
  }
}

}  // namespace
}  // namespace dvs::core
