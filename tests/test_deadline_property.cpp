// The load-bearing property of the whole library: on EDF-schedulable task
// sets, NO governor may ever cause a deadline miss, for any utilization,
// any workload pattern, and any processor.  Each TEST_P cell runs several
// independently generated random task sets.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "opt/yds.hpp"
#include "sched/analysis.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

task::TaskSet random_set(double utilization, std::uint64_t seed,
                         std::size_t n_tasks = 5) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n_tasks;
  cfg.total_utilization = utilization;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;  // coarse grid -> finite hyperperiods
  util::Rng rng(seed);
  return task::generate_task_set(cfg, rng);
}

using DeadlineParam = std::tuple<std::string /*governor*/, double /*util*/>;

class DeadlineInvariant : public ::testing::TestWithParam<DeadlineParam> {};

TEST_P(DeadlineInvariant, ZeroMissesOnRandomSets) {
  const auto& [governor_name, utilization] = GetParam();
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    const auto ts = random_set(utilization, 1000 * rep + 7);
    ASSERT_TRUE(sched::edf_schedulable(ts));
    const auto workload = task::uniform_model(rep + 11);
    const cpu::Processor proc = cpu::ideal_processor();
    auto g = core::make_governor(governor_name);
    sim::SimOptions opts;
    opts.length = 3.0;
    const auto r = sim::simulate(ts, *workload, proc, *g, opts);
    EXPECT_EQ(r.deadline_misses, 0)
        << governor_name << " missed at U=" << utilization << " rep=" << rep;
    EXPECT_EQ(r.jobs_completed + r.jobs_truncated, r.jobs_released);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGovernorsAllUtilizations, DeadlineInvariant,
    ::testing::Combine(::testing::Values("noDVS", "staticEDF", "lppsEDF",
                                         "ccEDF", "laEDF", "DRA", "AGR",
                                         "lpSEH-h", "lpSEH", "uniformSlack"),
                       ::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0)),
    [](const ::testing::TestParamInfo<DeadlineParam>& info) {
      std::string name = std::get<0>(info.param) + "_u" +
                         std::to_string(static_cast<int>(
                             std::get<1>(info.param) * 100.0));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

using PatternParam = std::tuple<std::string, int /*pattern index*/>;

class PatternInvariant : public ::testing::TestWithParam<PatternParam> {};

task::ExecutionTimeModelPtr pattern_by_index(int idx, std::uint64_t seed) {
  switch (idx) {
    case 0: return task::constant_ratio_model(1.0);     // pure worst case
    case 1: return task::uniform_model(seed);
    case 2: return task::sin_pattern_model(seed);
    case 3: return task::cos_pattern_model(seed);
    case 4: return task::bimodal_model(seed, 0.2, 0.15, 1.0);
    default: return task::exponential_model(seed, 0.3);
  }
}

TEST_P(PatternInvariant, ZeroMissesAcrossWorkloadShapes) {
  const auto& [governor_name, pattern] = GetParam();
  const auto ts = random_set(0.85, 99);
  const auto workload = pattern_by_index(pattern, 31);
  const cpu::Processor proc = cpu::ideal_processor();
  auto g = core::make_governor(governor_name);
  sim::SimOptions opts;
  opts.length = 3.0;
  const auto r = sim::simulate(ts, *workload, proc, *g, opts);
  EXPECT_EQ(r.deadline_misses, 0)
      << governor_name << " missed under " << workload->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllGovernorsAllPatterns, PatternInvariant,
    ::testing::Combine(::testing::Values("lppsEDF", "ccEDF", "laEDF", "DRA",
                                         "AGR", "lpSEH-h", "lpSEH",
                                         "uniformSlack"),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<PatternParam>& info) {
      std::string name = std::get<0>(info.param) + "_p" +
                         std::to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class ProcessorInvariant : public ::testing::TestWithParam<const char*> {};

TEST_P(ProcessorInvariant, DiscreteLevelsNeverCauseMisses) {
  const cpu::Processor proc = cpu::processor_by_name(GetParam());
  const auto ts = random_set(0.8, 5);
  const auto workload = task::uniform_model(8);
  for (const auto& spec : core::standard_governors()) {
    cpu::Processor free_switching = proc;
    free_switching.transition = cpu::TransitionModel::none();
    auto g = spec.make();
    sim::SimOptions opts;
    opts.length = 2.0;
    const auto r = sim::simulate(ts, *workload, free_switching, *g, opts);
    EXPECT_EQ(r.deadline_misses, 0) << spec.name << " on " << proc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, ProcessorInvariant,
                         ::testing::Values("ideal", "xscale", "strongarm",
                                           "crusoe", "four-level"));

TEST(DeadlineInvariantEmbedded, AllGovernorsOnAllEmbeddedSets) {
  for (const auto& ts : task::embedded_task_sets(0.15)) {
    const auto workload = task::uniform_model(3);
    for (const auto& spec : core::standard_governors()) {
      auto g = spec.make();
      sim::SimOptions opts;
      opts.length = std::min(ts.default_sim_length(), 20.0);
      const auto r =
          sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts);
      EXPECT_EQ(r.deadline_misses, 0) << spec.name << " on " << ts.name();
    }
  }
}

TEST(DeadlineInvariantConstrained, SlackAnalysisHandlesConstrainedDeadlines) {
  // lpSEH's demand analysis covers constrained deadlines natively; verify
  // on a set where D < T for every task.
  task::TaskSet ts("constrained");
  for (int i = 0; i < 4; ++i) {
    auto t = task::make_task(i, "t" + std::to_string(i),
                             0.02 * (i + 1), 0.003 * (i + 1),
                             0.0006 * (i + 1));
    t.deadline = 0.7 * t.period;
    ts.add(t);
  }
  ASSERT_TRUE(sched::edf_schedulable(ts));
  for (const char* name : {"noDVS", "staticEDF", "lpSEH", "lpSEH-h"}) {
    auto g = core::make_governor(name);
    const auto workload = task::uniform_model(17);
    sim::SimOptions opts;
    opts.length = 2.0;
    const auto r =
        sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts);
    EXPECT_EQ(r.deadline_misses, 0) << name;
  }
}

TEST(DeadlineInvariantOracle, NoGovernorUndercutsTheClairvoyantBound) {
  // The YDS schedule of the ACTUAL execution times is the minimum busy
  // energy ANY zero-miss schedule can spend on the jobs due within the
  // horizon, so on the idle-free ideal processor every governor's total
  // energy must sit at or above the continuous bound.  Horizon 1.0 (not
  // the 3.0 the miss tests use) keeps the O(jobs^2) peeling cheap.
  const cpu::Processor proc = cpu::ideal_processor();
  for (const double u : {0.4, 0.7, 0.9}) {
    for (const std::uint64_t seed : {21, 42}) {
      const auto ts = random_set(u, seed);
      ASSERT_TRUE(sched::edf_schedulable(ts));
      const auto workload = task::uniform_model(seed + 1);
      const opt::OracleBounds b = opt::oracle_bounds(ts, *workload, proc, 1.0);
      ASSERT_TRUE(b.valid()) << "U=" << u << " seed=" << seed;
      EXPECT_LE(b.continuous_energy, b.discrete_energy + 1e-12);
      for (const auto& spec : core::standard_governors()) {
        SCOPED_TRACE("governor=" + std::string(spec.name) + " U=" +
                     std::to_string(u) + " seed=" + std::to_string(seed));
        auto g = spec.make();
        sim::SimOptions opts;
        opts.length = 1.0;
        const auto r = sim::simulate(ts, *workload, proc, *g, opts);
        EXPECT_EQ(r.deadline_misses, 0);
        EXPECT_GE(r.total_energy(), b.continuous_energy - 1e-9);
        EXPECT_GE(r.total_energy(), b.discrete_energy - 1e-9);
      }
    }
  }
}

TEST(DeadlineInvariantOverhead, ChargedSlackAnalysisSurvivesRealStalls) {
  // With stalls charged to the schedule, the overhead-configured lpSEH
  // must still meet everything on every preset processor.
  const auto ts = random_set(0.7, 77);
  const auto workload = task::uniform_model(6);
  for (const char* name : {"xscale", "strongarm", "crusoe"}) {
    const cpu::Processor proc = cpu::processor_by_name(name);
    core::SlackTimeConfig cfg;
    cfg.switch_overhead = proc.transition.switch_time(0.5, 1.0);
    core::SlackTimeGovernor g(cfg);
    sim::SimOptions opts;
    opts.length = 2.0;
    const auto r = sim::simulate(ts, *workload, proc, g, opts);
    EXPECT_EQ(r.deadline_misses, 0) << "on " << name;
  }
}

}  // namespace
}  // namespace dvs
