#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace dvs::util {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x", "y"});
  w.row({"1", "2,3"});
  EXPECT_EQ(os.str(), "x,y\n1,\"2,3\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row_numeric({1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "1.50,2.25\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string s = t.str();
  // Header separator present, all rows aligned to the widest cell.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TextTable, NumericRowFormatsPrecision) {
  TextTable t;
  t.row_numeric("r", {0.123456}, 3);
  EXPECT_NE(t.str().find("0.123"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Strings, FormatSiTime) {
  EXPECT_EQ(format_si_time(1.5), "1.500 s");
  EXPECT_EQ(format_si_time(2e-3), "2.000 ms");
  EXPECT_EQ(format_si_time(3e-6), "3.000 us");
  EXPECT_EQ(format_si_time(4e-9), "4.000 ns");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("lpSEH-h", "lpSEH"));
  EXPECT_FALSE(starts_with("lp", "lpSEH"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("lpSEH"), "lpseh"); }

}  // namespace
}  // namespace dvs::util
