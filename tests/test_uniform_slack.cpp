#include "core/uniform_slack.hpp"

#include <gtest/gtest.h>

#include "core/slack_time.hpp"
#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TEST(UniformSlack, LoneWorstCaseJobRunsAtItsDensity) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  UniformSlackGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.4, 1e-9);
}

TEST(UniformSlack, BindingCheckpointSetsTheSpeed) {
  // Synchronous release of both worst-case jobs.  The floor's plan is
  // "alpha until d0 = 10, full speed afterwards", so the d = 20
  // checkpoint (demand 3 + 8 + 3 = 14) requires 10*alpha + 10 >= 14,
  // i.e. alpha >= 0.4; d = 10 requires only 0.3.
  TaskSet ts("two");
  ts.add(make_task(0, "a", 10.0, 3.0));
  ts.add(make_task(1, "b", 20.0, 8.0));
  FakeContext ctx(std::move(ts));
  auto& j0 = ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  UniformSlackGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(j0, ctx), 0.4, 1e-9);
}

TEST(UniformSlack, EarlyCompletionLowersTheFloor) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 10.0, 3.0));
  ts.add(make_task(1, "b", 20.0, 8.0));
  FakeContext ctx(ts);
  UniformSlackGovernor g;
  g.on_start(ctx);
  // Task b's job finished after only 1 unit; only task a's job remains.
  auto& j0 = ctx.add_job(0, 0, 0.0);
  ctx.now_ = 1.0;
  const double alpha = g.select_speed(j0, ctx);
  // d=10: 3/9 = 0.333; d=20: (3+3)/19 = 0.316 -> floor 0.333.
  EXPECT_NEAR(alpha, 3.0 / 9.0, 1e-9);
}

TEST(UniformSlack, SpeedsAreMoreEvenThanGreedy) {
  // Measure the spread of executed speeds: uniformSlack should have a
  // smaller (max - min) weighted span than lpSEH on a slack-rich workload.
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.02, 0.006, 0.0006));
  ts.add(make_task(1, "b", 0.05, 0.015, 0.0015));
  ts.add(make_task(2, "c", 0.1, 0.02, 0.002));
  const auto workload = task::uniform_model(3);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 2.0;

  auto spread = [&](sim::Governor& g) {
    sim::VectorTrace trace;
    sim::SimOptions traced = opts;
    traced.trace = &trace;
    const auto r = sim::simulate(ts, *workload, proc, g, traced);
    EXPECT_EQ(r.deadline_misses, 0);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& s : trace.segments()) {
      if (s.kind != sim::SegmentKind::kBusy) continue;
      lo = std::min(lo, s.alpha);
      hi = std::max(hi, s.alpha);
    }
    return hi - lo;
  };

  UniformSlackGovernor uniform;
  SlackTimeGovernor greedy;
  EXPECT_LT(spread(uniform), spread(greedy));
}

TEST(UniformSlack, EnergyStaysInGreedysBallparkHere) {
  // Whether spreading or greedy wins depends on the workload: on *random*
  // task sets spreading wins on average (see
  // EnergyProperty.UniformSpreadingBeatsGreedySlackAssignment); on this
  // particular harmonic-ish set greedy is slightly ahead.  Pin both facts:
  // no misses, and the two stay within 15% of each other.
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.02, 0.006, 0.0006));
  ts.add(make_task(1, "b", 0.05, 0.015, 0.0015));
  ts.add(make_task(2, "c", 0.1, 0.02, 0.002));
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 2.0;

  double uniform_sum = 0.0;
  double greedy_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto workload = task::uniform_model(seed);
    UniformSlackGovernor uniform;
    SlackTimeGovernor greedy;
    const auto a = sim::simulate(ts, *workload, proc, uniform, opts);
    const auto b = sim::simulate(ts, *workload, proc, greedy, opts);
    EXPECT_EQ(a.deadline_misses, 0);
    EXPECT_EQ(b.deadline_misses, 0);
    uniform_sum += a.total_energy();
    greedy_sum += b.total_energy();
  }
  EXPECT_LT(uniform_sum, greedy_sum * 1.15);
  EXPECT_GT(uniform_sum, greedy_sum * 0.5);
}

TEST(UniformSlack, NeverBelowStaticRequirementUnderWorstCase) {
  TaskSet ts("full");
  ts.add(make_task(0, "a", 0.01, 0.005));
  ts.add(make_task(1, "b", 0.02, 0.01));  // U = 1
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  UniformSlackGovernor g;
  sim::SimOptions opts;
  opts.length = 1.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.average_speed, 1.0, 1e-6);
}

}  // namespace
}  // namespace dvs::core
