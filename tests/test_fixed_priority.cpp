#include "sched/fixed_priority.hpp"

#include <gtest/gtest.h>

#include "core/fp.hpp"
#include "core/no_dvs.hpp"
#include "core/registry.hpp"
#include "sched/analysis.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs {
namespace {

using task::make_task;
using task::TaskSet;

TEST(DmPriorities, ShorterDeadlineWins) {
  TaskSet ts("p");
  ts.add(make_task(0, "slow", 12.0, 1.0));
  ts.add(make_task(1, "fast", 4.0, 1.0));
  ts.add(make_task(2, "mid", 6.0, 1.0));
  const auto rank = sched::deadline_monotonic_priorities(ts);
  EXPECT_EQ(rank[1], 0);
  EXPECT_EQ(rank[2], 1);
  EXPECT_EQ(rank[0], 2);
}

TEST(DmPriorities, TieBreaksByIdDeterministically) {
  TaskSet ts("p");
  ts.add(make_task(0, "a", 4.0, 1.0));
  ts.add(make_task(1, "b", 4.0, 1.0));
  const auto rank = sched::deadline_monotonic_priorities(ts);
  EXPECT_EQ(rank[0], 0);
  EXPECT_EQ(rank[1], 1);
}

TEST(ResponseTimes, ClassicThreeTaskExample) {
  // Textbook RTA: C = {1, 2, 3}, T = {4, 6, 12} -> R = {1, 3, 10}.
  TaskSet ts("rta");
  ts.add(make_task(0, "a", 4.0, 1.0));
  ts.add(make_task(1, "b", 6.0, 2.0));
  ts.add(make_task(2, "c", 12.0, 3.0));
  const auto r =
      sched::response_times(ts, sched::deadline_monotonic_priorities(ts));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR((*r)[0], 1.0, 1e-9);
  EXPECT_NEAR((*r)[1], 3.0, 1e-9);
  EXPECT_NEAR((*r)[2], 10.0, 1e-9);
}

TEST(ResponseTimes, DetectsOverload) {
  TaskSet ts("over");
  ts.add(make_task(0, "a", 4.0, 3.0));
  ts.add(make_task(1, "b", 6.0, 3.0));  // U = 1.25
  EXPECT_FALSE(
      sched::response_times(ts, sched::deadline_monotonic_priorities(ts))
          .has_value());
  EXPECT_FALSE(sched::fp_schedulable(ts));
}

TEST(ResponseTimes, EdfFeasibleButFpInfeasible) {
  // The classic separation: U = 1.0 is EDF-feasible but breaks RM.
  TaskSet ts("sep");
  ts.add(make_task(0, "a", 2.0, 1.0));
  ts.add(make_task(1, "b", 5.0, 2.5));
  EXPECT_TRUE(sched::edf_schedulable(ts));
  EXPECT_FALSE(sched::fp_schedulable(ts));
}

TEST(MinimumConstantSpeedFp, HarmonicSetNeedsExactlyItsUtilization) {
  TaskSet ts("harmonic");
  ts.add(make_task(0, "a", 2.0, 0.5));
  ts.add(make_task(1, "b", 4.0, 1.0));
  ts.add(make_task(2, "c", 8.0, 2.0));
  EXPECT_NEAR(sched::minimum_constant_speed_fp(ts), 0.75, 1e-6);
}

TEST(MinimumConstantSpeedFp, NonHarmonicNeedsMoreThanUtilization) {
  TaskSet ts("liu-layland");
  ts.add(make_task(0, "a", 2.0, 0.6));
  ts.add(make_task(1, "b", 5.0, 1.5));  // U = 0.6
  const double s = sched::minimum_constant_speed_fp(ts);
  EXPECT_GT(s, 0.6 + 0.05);  // RM penalty over EDF
  EXPECT_LE(s, 1.0);
  // The derived speed must itself be feasible.
  EXPECT_TRUE(sched::response_times(
                  ts, sched::deadline_monotonic_priorities(ts), s)
                  .has_value());
}

TEST(MinimumConstantSpeedFp, RejectsInfeasibleSets) {
  TaskSet ts("over");
  ts.add(make_task(0, "a", 2.0, 1.0));
  ts.add(make_task(1, "b", 5.0, 2.5));
  EXPECT_THROW((void)sched::minimum_constant_speed_fp(ts),
               util::ContractError);
}

TEST(FpSimulation, RmPreemptsWhereEdfWouldNot) {
  // B: T=20, C=14, release 0 (deadline 20).  A: T=10, C=2, first release
  // at 12 (deadline 22 > 20).  EDF lets B finish; RM preempts at 12.
  TaskSet ts("sep");
  auto a = make_task(0, "A", 10.0, 2.0);
  a.phase = 12.0;
  ts.add(a);
  ts.add(make_task(1, "B", 20.0, 14.0));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();

  auto first_completion_of_a = [&](sim::SchedulingPolicy policy) {
    core::NoDvsGovernor g;
    sim::SimOptions opts;
    opts.length = 20.0;
    opts.policy = policy;
    opts.record_jobs = true;
    const auto r = sim::simulate(ts, *workload, proc, g, opts);
    for (const auto& j : r.jobs) {
      if (j.task_id == 0) return j.completion;
    }
    return -1.0;
  };

  EXPECT_NEAR(first_completion_of_a(sim::SchedulingPolicy::kFixedPriority),
              14.0, 1e-9);  // preempted B at 12, ran [12, 14]
  EXPECT_NEAR(first_completion_of_a(sim::SchedulingPolicy::kEdf), 16.0,
              1e-9);  // waited for B to finish at 14
}

TEST(FpGovernors, StaticFpMeetsAllDeadlinesAtItsDerivedSpeed) {
  TaskSet ts("fp");
  ts.add(make_task(0, "a", 0.02, 0.004, 0.001));
  ts.add(make_task(1, "b", 0.05, 0.01, 0.002));
  ts.add(make_task(2, "c", 0.11, 0.02, 0.004));
  ASSERT_TRUE(sched::fp_schedulable(ts));
  const auto workload = task::constant_ratio_model(1.0);  // worst case
  core::StaticFpGovernor g;
  sim::SimOptions opts;
  opts.length = 2.0;
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  const auto r =
      sim::simulate(ts, *workload, cpu::ideal_processor(), g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_LT(r.average_speed, 1.0);
}

TEST(FpGovernors, LppsFpStretchesAndStaysSafe) {
  TaskSet ts("fp");
  ts.add(make_task(0, "a", 0.02, 0.004, 0.0008));
  ts.add(make_task(1, "b", 0.06, 0.012, 0.0024));
  ASSERT_TRUE(sched::fp_schedulable(ts));
  const auto workload = task::uniform_model(3);
  core::LppsFpGovernor g;
  sim::SimOptions opts;
  opts.length = 2.0;
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  const auto r =
      sim::simulate(ts, *workload, cpu::ideal_processor(), g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_LT(r.average_speed, 1.0);
}

TEST(FpGovernors, PropertySweepZeroMisses) {
  // Random sets kept below the Liu & Layland bound are always
  // RM-schedulable; all FP governors must meet every deadline.
  task::GeneratorConfig cfg;
  cfg.n_tasks = 5;
  cfg.total_utilization = 0.65;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(400 + seed);
    const auto ts = task::generate_task_set(cfg, rng);
    ASSERT_TRUE(sched::fp_schedulable(ts));
    const auto workload = task::uniform_model(seed);
    for (int which = 0; which < 3; ++which) {
      sim::GovernorPtr g;
      if (which == 0) g = core::make_governor("noDVS");
      if (which == 1) g = std::make_unique<core::StaticFpGovernor>();
      if (which == 2) g = std::make_unique<core::LppsFpGovernor>();
      sim::SimOptions opts;
      opts.length = 2.0;
      opts.policy = sim::SchedulingPolicy::kFixedPriority;
      const auto r =
          sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts);
      EXPECT_EQ(r.deadline_misses, 0)
          << g->name() << " seed " << seed;
    }
  }
}

TEST(PolicyGuards, EdfGovernorsRefuseFixedPriorityRuns) {
  TaskSet ts("g");
  ts.add(make_task(0, "a", 0.02, 0.004));
  const auto workload = task::uniform_model(1);
  sim::SimOptions opts;
  opts.length = 0.1;
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  for (const char* name :
       {"staticEDF", "ccEDF", "laEDF", "DRA", "lpSEH", "uniformSlack"}) {
    auto g = core::make_governor(name);
    EXPECT_THROW(
        (void)sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts),
        util::ContractError)
        << name;
  }
}

TEST(PolicyGuards, FpGovernorsRefuseEdfRuns) {
  TaskSet ts("g");
  ts.add(make_task(0, "a", 0.02, 0.004));
  const auto workload = task::uniform_model(1);
  sim::SimOptions opts;
  opts.length = 0.1;
  core::StaticFpGovernor stat;
  EXPECT_THROW((void)sim::simulate(ts, *workload, cpu::ideal_processor(),
                                   stat, opts),
               util::ContractError);
  core::LppsFpGovernor lpps;
  EXPECT_THROW((void)sim::simulate(ts, *workload, cpu::ideal_processor(),
                                   lpps, opts),
               util::ContractError);
}

}  // namespace
}  // namespace dvs
