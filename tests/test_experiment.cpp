#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::exp {
namespace {

Case small_case(std::uint64_t seed) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = 4;
  cfg.total_utilization = 0.6;
  cfg.period_min = 0.02;
  cfg.period_max = 0.1;
  cfg.bcet_ratio = 0.1;
  util::Rng rng(seed);
  return {task::generate_task_set(cfg, rng), task::uniform_model(seed)};
}

TEST(RunCase, ReferenceRunsFirstAndIsNormalizedToOne) {
  ExperimentConfig cfg = default_config();
  cfg.sim_length = 0.5;
  const auto outcome = run_case(small_case(1), cfg);
  ASSERT_FALSE(outcome.outcomes.empty());
  EXPECT_EQ(outcome.outcomes.front().governor, "noDVS");
  EXPECT_DOUBLE_EQ(outcome.outcomes.front().normalized_energy, 1.0);
}

TEST(RunCase, CoversEveryRequestedGovernorExactlyOnce) {
  ExperimentConfig cfg = default_config();
  cfg.sim_length = 0.5;
  const auto outcome = run_case(small_case(2), cfg);
  // noDVS + the 9 other registry governors.
  EXPECT_EQ(outcome.outcomes.size(), 10u);
}

TEST(RunCase, ByNameFindsAndThrows) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"lpSEH"};
  cfg.sim_length = 0.3;
  const auto outcome = run_case(small_case(3), cfg);
  EXPECT_EQ(outcome.by_name("lpseh").governor, "lpSEH");
  EXPECT_THROW((void)outcome.by_name("nonexistent"), util::ContractError);
}

TEST(RunCase, NormalizationIsConsistent) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"staticEDF"};
  cfg.sim_length = 0.5;
  const auto outcome = run_case(small_case(4), cfg);
  const auto& ref = outcome.by_name("noDVS");
  const auto& stat = outcome.by_name("staticEDF");
  EXPECT_NEAR(stat.normalized_energy,
              stat.result.total_energy() / ref.result.total_energy(), 1e-12);
}

TEST(RunSweep, ShapeMatchesInputs) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"staticEDF", "lpSEH"};
  cfg.replications = 2;
  cfg.sim_length = 0.3;
  const auto sweep = run_sweep(
      cfg, "U", {0.4, 0.8},
      [](double u, std::size_t, std::uint64_t seed) {
        task::GeneratorConfig gen;
        gen.n_tasks = 4;
        gen.total_utilization = u;
        gen.period_min = 0.02;
        gen.period_max = 0.1;
        util::Rng rng(seed);
        return Case{task::generate_task_set(gen, rng),
                    task::uniform_model(seed)};
      });
  ASSERT_EQ(sweep.points.size(), 2u);
  ASSERT_EQ(sweep.governors.size(), 3u);  // noDVS + 2
  EXPECT_EQ(sweep.governors.front(), "noDVS");
  for (const auto& p : sweep.points) {
    ASSERT_EQ(p.normalized_energy.size(), 3u);
    for (const auto& s : p.normalized_energy) EXPECT_EQ(s.count(), 2u);
  }
  EXPECT_EQ(sweep.points[0].x, 0.4);
  EXPECT_EQ(sweep.points[1].x, 0.8);
}

TEST(RunSweep, DeterministicForFixedSeed) {
  auto build = [](double, std::size_t, std::uint64_t seed) {
    return small_case(seed);
  };
  ExperimentConfig cfg = default_config();
  cfg.governors = {"ccEDF"};
  cfg.replications = 2;
  cfg.sim_length = 0.3;
  const auto a = run_sweep(cfg, "x", {1.0}, build);
  const auto b = run_sweep(cfg, "x", {1.0}, build);
  EXPECT_DOUBLE_EQ(a.points[0].normalized_energy[1].mean(),
                   b.points[0].normalized_energy[1].mean());
}

TEST(RunSweep, RejectsEmptyInputs) {
  ExperimentConfig cfg = default_config();
  auto build = [](double, std::size_t, std::uint64_t seed) {
    return small_case(seed);
  };
  EXPECT_THROW((void)run_sweep(cfg, "x", {}, build), util::ContractError);
  cfg.replications = 0;
  EXPECT_THROW((void)run_sweep(cfg, "x", {1.0}, build), util::ContractError);
}

TEST(Report, PrintSweepMentionsGovernorsAndMisses) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"lpSEH"};
  cfg.replications = 1;
  cfg.sim_length = 0.3;
  const auto sweep = run_sweep(cfg, "U", {0.5},
                               [](double, std::size_t, std::uint64_t seed) {
                                 return small_case(seed);
                               });
  std::ostringstream os;
  print_sweep(os, sweep, "test sweep");
  const std::string out = os.str();
  EXPECT_NE(out.find("lpSEH"), std::string::npos);
  EXPECT_NE(out.find("deadline misses"), std::string::npos);
  EXPECT_NE(out.find("invariant holds"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"lpSEH"};
  cfg.replications = 1;
  cfg.sim_length = 0.3;
  const auto sweep = run_sweep(cfg, "U", {0.4, 0.6},
                               [](double, std::size_t, std::uint64_t seed) {
                                 return small_case(seed);
                               });
  std::ostringstream os;
  write_sweep_csv(os, sweep);
  const std::string out = os.str();
  EXPECT_NE(out.find("U,noDVS_mean,lpSEH_mean"), std::string::npos);
  // header + 2 data rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Report, PrintCaseListsEveryGovernor) {
  ExperimentConfig cfg = default_config();
  cfg.sim_length = 0.3;
  const auto outcome = run_case(small_case(5), cfg);
  std::ostringstream os;
  print_case(os, outcome, "case");
  for (const auto& g : outcome.outcomes) {
    EXPECT_NE(os.str().find(g.governor), std::string::npos);
  }
}

}  // namespace
}  // namespace dvs::exp
