#include "task/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "task/benchmarks.hpp"
#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

constexpr const char* kGood =
    "# demo set\n"
    "name,period,deadline,wcet,bcet,phase\n"
    "control,0.005,0.005,0.002,0.0005,0\n"
    "telemetry,0.020,,0.004,,\n";

TEST(TaskSetCsv, ParsesFullAndDefaultedFields) {
  std::istringstream in(kGood);
  const TaskSet ts = load_task_set_csv(in, "demo");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].name, "control");
  EXPECT_DOUBLE_EQ(ts[0].bcet, 0.0005);
  // Defaults: deadline = period, bcet = wcet, phase = 0.
  EXPECT_DOUBLE_EQ(ts[1].deadline, 0.020);
  EXPECT_DOUBLE_EQ(ts[1].bcet, 0.004);
  EXPECT_DOUBLE_EQ(ts[1].phase, 0.0);
  EXPECT_NO_THROW(ts.validate());
}

TEST(TaskSetCsv, RoundTripsExactly) {
  const TaskSet original = cnc_task_set(0.25);
  std::ostringstream out;
  save_task_set_csv(original, out);
  std::istringstream in(out.str());
  const TaskSet loaded = load_task_set_csv(in, original.name());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_NEAR(loaded[i].period, original[i].period, 1e-9);
    EXPECT_NEAR(loaded[i].wcet, original[i].wcet, 1e-9);
    EXPECT_NEAR(loaded[i].bcet, original[i].bcet, 1e-9);
  }
}

TEST(TaskSetCsv, RejectsMissingHeader) {
  std::istringstream in("control,0.005,0.005,0.002,0.0005,0\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsWrongFieldCount) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "control,0.005,0.002\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsMalformedNumbers) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "control,fast,,0.002,,\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsInvalidTaskParameters) {
  // WCET above the deadline violates the model; the loader reports the
  // line number.
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "bad,0.005,0.005,0.007,,\n");
  try {
    (void)load_task_set_csv(in);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TaskSetCsv, RejectsEmptyInput) {
  std::istringstream in("name,period,deadline,wcet,bcet,phase\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
  std::istringstream empty("");
  EXPECT_THROW((void)load_task_set_csv(empty), ContractError);
}

TEST(TaskSetCsv, HandlesWindowsLineEndings) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\r\n"
      "control,0.005,0.005,0.002,0.0005,0\r\n");
  const TaskSet ts = load_task_set_csv(in);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].name, "control");
}

TEST(TaskSetCsv, MissingFileThrows) {
  EXPECT_THROW((void)load_task_set_csv_file("/nonexistent/path.csv"),
               ContractError);
}

}  // namespace
}  // namespace dvs::task
