#include "task/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "task/benchmarks.hpp"
#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

constexpr const char* kGood =
    "# demo set\n"
    "name,period,deadline,wcet,bcet,phase\n"
    "control,0.005,0.005,0.002,0.0005,0\n"
    "telemetry,0.020,,0.004,,\n";

TEST(TaskSetCsv, ParsesFullAndDefaultedFields) {
  std::istringstream in(kGood);
  const TaskSet ts = load_task_set_csv(in, "demo");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].name, "control");
  EXPECT_DOUBLE_EQ(ts[0].bcet, 0.0005);
  // Defaults: deadline = period, bcet = wcet, phase = 0.
  EXPECT_DOUBLE_EQ(ts[1].deadline, 0.020);
  EXPECT_DOUBLE_EQ(ts[1].bcet, 0.004);
  EXPECT_DOUBLE_EQ(ts[1].phase, 0.0);
  EXPECT_NO_THROW(ts.validate());
}

TEST(TaskSetCsv, RoundTripsExactly) {
  const TaskSet original = cnc_task_set(0.25);
  std::ostringstream out;
  save_task_set_csv(original, out);
  std::istringstream in(out.str());
  const TaskSet loaded = load_task_set_csv(in, original.name());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_NEAR(loaded[i].period, original[i].period, 1e-9);
    EXPECT_NEAR(loaded[i].wcet, original[i].wcet, 1e-9);
    EXPECT_NEAR(loaded[i].bcet, original[i].bcet, 1e-9);
  }
}

TEST(TaskSetCsv, ParsesAndRoundTripsFirmnessColumns) {
  // 8-column form: the optional (m,k) pair, with the usual defaulting
  // (empty mk_m -> 1 = hard; empty mk_k -> mk_m).
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase,mk_m,mk_k\n"
      "video,0.010,,0.004,,,1,3\n"
      "audio,0.020,,0.004,,,2,4\n"
      "control,0.005,,0.002,,,,\n");
  const TaskSet ts = load_task_set_csv(in, "firm");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].mk_m, 1);
  EXPECT_EQ(ts[0].mk_k, 3);
  EXPECT_FALSE(ts[0].is_hard());
  EXPECT_EQ(ts[1].mk_m, 2);
  EXPECT_EQ(ts[1].mk_k, 4);
  EXPECT_TRUE(ts[2].is_hard());  // both defaulted -> (1,1)

  // Round-trip: a set with a weakly-hard task keeps its windows exactly.
  std::ostringstream out;
  save_task_set_csv(ts, out);
  EXPECT_NE(out.str().find("mk_m,mk_k"), std::string::npos);
  std::istringstream back(out.str());
  const TaskSet loaded = load_task_set_csv(back, "firm");
  ASSERT_EQ(loaded.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(loaded[i].mk_m, ts[i].mk_m);
    EXPECT_EQ(loaded[i].mk_k, ts[i].mk_k);
  }
}

TEST(TaskSetCsv, AllHardSetsOmitTheFirmnessColumns) {
  // Plain hard sets must stay byte-compatible with the 6-column format.
  const TaskSet original = cnc_task_set(0.25);
  std::ostringstream out;
  save_task_set_csv(original, out);
  EXPECT_EQ(out.str().find("mk_m"), std::string::npos);
}

TEST(TaskSetCsv, RejectsMissingHeader) {
  std::istringstream in("control,0.005,0.005,0.002,0.0005,0\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsWrongFieldCount) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "control,0.005,0.002\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsMalformedNumbers) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "control,fast,,0.002,,\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
}

TEST(TaskSetCsv, RejectsInvalidTaskParameters) {
  // WCET above the deadline violates the model; the loader reports the
  // line number.
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "bad,0.005,0.005,0.007,,\n");
  try {
    (void)load_task_set_csv(in);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TaskSetCsv, RejectsEmptyInput) {
  std::istringstream in("name,period,deadline,wcet,bcet,phase\n");
  EXPECT_THROW((void)load_task_set_csv(in), ContractError);
  std::istringstream empty("");
  EXPECT_THROW((void)load_task_set_csv(empty), ContractError);
}

TEST(TaskSetCsv, HandlesWindowsLineEndings) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\r\n"
      "control,0.005,0.005,0.002,0.0005,0\r\n");
  const TaskSet ts = load_task_set_csv(in);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].name, "control");
}

// Byte-level framing table: the same two-task document under every line
// convention a networked client might send (DESIGN.md §12 — the daemon
// accepts tasks_csv payloads verbatim).  Each variant must load the same
// two tasks.
struct FramingCase {
  const char* label;
  const char* text;
};

class TaskSetCsvFraming : public ::testing::TestWithParam<FramingCase> {};

TEST_P(TaskSetCsvFraming, LoadsTheSameTwoTasks) {
  std::istringstream in(GetParam().text);
  const TaskSet ts = load_task_set_csv(in, "framing");
  ASSERT_EQ(ts.size(), 2u) << GetParam().label;
  EXPECT_EQ(ts[0].name, "control");
  EXPECT_DOUBLE_EQ(ts[0].period, 0.005);
  EXPECT_EQ(ts[1].name, "telemetry");
  EXPECT_DOUBLE_EQ(ts[1].wcet, 0.004);
}

INSTANTIATE_TEST_SUITE_P(
    Table, TaskSetCsvFraming,
    ::testing::Values(
        FramingCase{"unix_lf",
                    "name,period,deadline,wcet,bcet,phase\n"
                    "control,0.005,,0.002,,\n"
                    "telemetry,0.020,,0.004,,\n"},
        FramingCase{"crlf",
                    "name,period,deadline,wcet,bcet,phase\r\n"
                    "control,0.005,,0.002,,\r\n"
                    "telemetry,0.020,,0.004,,\r\n"},
        FramingCase{"no_final_newline",
                    "name,period,deadline,wcet,bcet,phase\n"
                    "control,0.005,,0.002,,\n"
                    "telemetry,0.020,,0.004,,"},
        FramingCase{"crlf_no_final_newline",
                    "name,period,deadline,wcet,bcet,phase\r\n"
                    "control,0.005,,0.002,,\r\n"
                    "telemetry,0.020,,0.004,,"},
        FramingCase{"utf8_bom",
                    "\xEF\xBB\xBFname,period,deadline,wcet,bcet,phase\n"
                    "control,0.005,,0.002,,\n"
                    "telemetry,0.020,,0.004,,\n"},
        FramingCase{"blank_and_whitespace_lines",
                    "name,period,deadline,wcet,bcet,phase\n"
                    "\n"
                    "control,0.005,,0.002,,\n"
                    "   \t\n"
                    "telemetry,0.020,,0.004,,\n"
                    "\n"},
        FramingCase{"indented_comment_and_rows",
                    "name,period,deadline,wcet,bcet,phase\n"
                    "  # mid-file comment\n"
                    "  control,0.005,,0.002,,\n"
                    "  telemetry,0.020,,0.004,,\n"}),
    [](const ::testing::TestParamInfo<FramingCase>& info) {
      return info.param.label;
    });

TEST(TaskSetCsv, BomIsOnlyStrippedOnTheFirstLine) {
  // A BOM byte sequence mid-file is payload, not framing: here it corrupts
  // a task name into non-matching bytes, and the row still parses (names
  // are opaque), proving the stripping is positionally scoped.
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "\xEF\xBB\xBFweird,0.005,,0.002,,\n");
  const TaskSet ts = load_task_set_csv(in);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].name, "\xEF\xBB\xBFweird");
}

TEST(TaskSetCsv, MissingFileThrows) {
  EXPECT_THROW((void)load_task_set_csv_file("/nonexistent/path.csv"),
               ContractError);
}

TEST(TaskSetCsv, TrimsFieldWhitespace) {
  std::istringstream in(
      "name,period,deadline,wcet,bcet,phase\n"
      "control , 0.005 ,\t0.005, 0.002 , 0.0005 , 0\n");
  const TaskSet ts = load_task_set_csv(in);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].name, "control");
  EXPECT_DOUBLE_EQ(ts[0].period, 0.005);
}

// Malformed-input table: every row must be rejected with a ContractError
// that names the offending line.  One case per failure class the loader
// hardens against.
struct MalformedCase {
  const char* label;
  const char* row;            // appended after a valid header + line 2
  const char* expect_in_msg;  // substring the error must contain
};

class TaskSetCsvMalformed : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(TaskSetCsvMalformed, RejectedWithLineNumber) {
  const MalformedCase& c = GetParam();
  std::istringstream in(
      std::string("name,period,deadline,wcet,bcet,phase\n"
                  "good,0.010,0.010,0.004,0.001,0\n") +
      c.row + "\n");
  try {
    (void)load_task_set_csv(in);
    FAIL() << c.label << ": expected ContractError";
  } catch (const ContractError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << c.label << ": " << msg;
    EXPECT_NE(msg.find(c.expect_in_msg), std::string::npos)
        << c.label << ": " << msg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, TaskSetCsvMalformed,
    ::testing::Values(
        MalformedCase{"truncated_row", "short,0.005,0.005", "expected 6"},
        MalformedCase{"extra_fields", "long,0.005,0.005,0.002,0.0005,0,1",
                      "expected 6"},
        MalformedCase{"nan_period", "t,nan,,0.002,,", "non-finite"},
        MalformedCase{"inf_wcet", "t,0.005,,inf,,", "non-finite"},
        MalformedCase{"negative_period", "t,-0.005,,0.002,,",
                      "period must be positive"},
        MalformedCase{"zero_period", "t,0,,0.001,,",
                      "period must be positive"},
        MalformedCase{"zero_wcet", "t,0.005,,0,,", "WCET must be positive"},
        MalformedCase{"deadline_over_period", "t,0.005,0.009,0.002,,",
                      "constrained deadlines"},
        MalformedCase{"bcet_over_wcet", "t,0.005,,0.002,0.003,",
                      "BCET must be in"},
        MalformedCase{"duplicate_name", "good,0.020,0.020,0.004,0.001,0",
                      "duplicate task name"},
        MalformedCase{"not_a_number", "t,0.005,,2ms,,", "malformed wcet"},
        MalformedCase{"empty_name", ",0.005,,0.002,,", "empty task name"},
        MalformedCase{"seven_fields", "t,0.005,,0.002,,,1", "expected 6"},
        MalformedCase{"fractional_mk", "t,0.005,,0.002,,,1.5,3",
                      "must be a positive integer"},
        MalformedCase{"zero_mk_m", "t,0.005,,0.002,,,0,3",
                      "must be a positive integer"},
        MalformedCase{"negative_mk_k", "t,0.005,,0.002,,,1,-2",
                      "must be a positive integer"},
        MalformedCase{"garbage_mk", "t,0.005,,0.002,,,two,3",
                      "malformed mk_m"},
        MalformedCase{"m_exceeds_k", "t,0.005,,0.002,,,3,2",
                      "(m,k) firmness needs m <= k"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace dvs::task
