#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace dvs::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, TracksMinAndMax) {
  Gauge g;
  EXPECT_FALSE(g.seen());
  g.set(3.0);
  g.set(-1.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), -1.0);
  EXPECT_DOUBLE_EQ(g.max(), 3.0);
  EXPECT_TRUE(g.seen());
}

TEST(Histogram, PlacesSamplesInTheRightBuckets) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bucket 0
  h.add(0.95);   // bucket 9
  h.add(0.55, 2.0);  // bucket 5, weight 2
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(5), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(9), 1.0);
  EXPECT_EQ(h.samples(), 3);
  EXPECT_DOUBLE_EQ(h.weight_sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.05);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.95);
  EXPECT_EQ(h.nonzero_buckets(), 3u);
}

TEST(Histogram, UnderAndOverflowAreExplicit) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive: lands in overflow
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_EQ(h.samples(), 3);
  EXPECT_EQ(h.nonzero_buckets(), 2u);  // the two boundary buckets
}

TEST(Histogram, DropsNonFiniteSamples) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(0.5, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.samples(), 0);
  EXPECT_EQ(h.dropped(), 3);
  EXPECT_DOUBLE_EQ(h.weight_sum(), 0.0);
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::ContractError);
}

TEST(MetricsRegistry, ReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("dispatches");
  // Growing the registry must not invalidate handed-out references.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  Counter& b = reg.counter("dispatches");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.find_counter("dispatches")->value(), 1);
}

TEST(MetricsRegistry, HistogramRelookupMustMatchLayout) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 1.0, 8);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 1.0, 8));
  EXPECT_THROW(reg.histogram("h", 0.0, 2.0, 8), util::ContractError);
  EXPECT_THROW(reg.histogram("h", 0.0, 1.0, 16), util::ContractError);
}

TEST(MetricsRegistry, KindsShareNamesWithoutCollision) {
  MetricsRegistry reg;
  reg.counter("x").inc(7);
  reg.gauge("x").set(1.5);
  EXPECT_EQ(reg.find_counter("x")->value(), 7);
  EXPECT_DOUBLE_EQ(reg.find_gauge("x")->value(), 1.5);
  EXPECT_EQ(reg.find_histogram("x"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, CsvIsInsertionOrderedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("first").inc(2);
  reg.gauge("second").set(0.5);
  reg.histogram("third", 0.0, 1.0, 2).add(0.25);

  std::ostringstream a;
  reg.write_csv(a);
  std::ostringstream b;
  reg.write_csv(b);
  EXPECT_EQ(a.str(), b.str());  // byte-identical re-export

  const std::string out = a.str();
  EXPECT_EQ(out.find("kind,name,field,value"), 0u);
  const auto p1 = out.find("counter,first");
  const auto p2 = out.find("gauge,second");
  const auto p3 = out.find("histogram,third");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_NE(out.find("histogram,third,bucket[0;0.5),1"), std::string::npos);
}

TEST(MetricsRegistry, PrintMentionsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("dispatches").inc(3);
  reg.histogram("residency", 0.0, 1.0, 4).add(0.5, 2.0);
  std::ostringstream out;
  reg.print(out);
  EXPECT_NE(out.str().find("dispatches = 3"), std::string::npos);
  EXPECT_NE(out.str().find("residency"), std::string::npos);
}

}  // namespace
}  // namespace dvs::obs
