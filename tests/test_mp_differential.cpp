// The M = 1 equivalence contract (DESIGN.md §10): the partitioned backend
// on a single core is BIT-IDENTICAL to the uniprocessor simulator — every
// SimResult field and every JobRecord, over 50 random task sets spanning
// governors, utilizations and set sizes.  The same holds one level up:
// exp::run_sweep with n_cores = 1 reproduces the legacy (n_cores = 0)
// sweep exactly.  The lpSEH DemandCache is additionally oracle-checked on
// the partitioned path (verify_with_oracle reruns every slack sweep from
// scratch and asserts bit-equality).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "mp/mp_sim.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

task::TaskSet random_set(double u, std::uint64_t seed, std::size_t n) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  util::Rng rng(seed);
  return task::generate_task_set(cfg, rng);
}

const std::vector<std::string> kGovernors{
    "noDVS", "staticEDF", "lppsEDF", "ccEDF", "laEDF",
    "DRA",   "AGR",       "lpSEH-h", "lpSEH", "uniformSlack"};

TEST(MpDifferential, FiftySetsBitIdenticalToUniprocessor) {
  const cpu::Processor proc = cpu::ideal_processor();
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::uint64_t seed = util::hash_u64(0x50D1FF, i);
    const double u = 0.3 + 0.65 * static_cast<double>(i) / 49.0;
    const std::size_t n = 3 + static_cast<std::size_t>(i % 8);
    const std::string& gov = kGovernors[i % kGovernors.size()];
    SCOPED_TRACE("set " + std::to_string(i) + " seed " +
                 std::to_string(seed) + " governor " + gov);

    const task::TaskSet ts = random_set(u, seed, n);
    const auto workload = task::uniform_model(seed);

    auto uni_gov = core::make_governor(gov);
    sim::SimOptions opts;
    opts.length = 0.4;
    opts.record_jobs = true;
    const sim::SimResult uni =
        sim::simulate(ts, *workload, proc, *uni_gov, opts);

    mp::MpOptions mo;
    mo.n_cores = 1;
    mo.length = 0.4;
    mo.record_jobs = true;
    const mp::MpResult part = mp::simulate_mp(
        ts, workload, proc, [&gov] { return core::make_governor(gov); }, mo);

    exp::expect_same_result(uni, part.total);
    ASSERT_EQ(part.cores.size(), 1u);
    exp::expect_same_result(uni, part.cores.front());
  }
}

TEST(MpDifferential, SingleCoreSweepReproducesTheLegacySweep) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "DRA", "lpSEH"};
  cfg.seed = 515;
  cfg.replications = 3;
  cfg.sim_length = 0.3;
  cfg.record_jobs = true;
  cfg.keep_case_outcomes = true;
  const auto builder = [](double u, std::size_t, std::uint64_t seed) {
    return exp::Case{random_set(u, seed, 5), task::uniform_model(seed)};
  };

  const exp::SweepOutcome legacy =
      exp::run_sweep(cfg, "U", {0.5, 0.8}, builder);
  cfg.n_cores = 1;  // route through the partitioned backend
  for (const auto h : mp::all_heuristics()) {
    cfg.partitioner = h;
    const exp::SweepOutcome mp1 =
        exp::run_sweep(cfg, "U", {0.5, 0.8}, builder);
    // Aggregates, per-case results and job records must agree exactly;
    // only the mp detail pointer (absent on the legacy path) differs, so
    // compare per-case outcomes field-by-field rather than via
    // expect_same_sweep.
    ASSERT_EQ(legacy.points.size(), mp1.points.size());
    EXPECT_TRUE(mp1.failures.empty());
    for (std::size_t p = 0; p < legacy.points.size(); ++p) {
      for (std::size_t g = 0; g < legacy.governors.size(); ++g) {
        exp::expect_same_stats(legacy.points[p].normalized_energy[g],
                               mp1.points[p].normalized_energy[g]);
        exp::expect_same_stats(legacy.points[p].speed_switches[g],
                               mp1.points[p].speed_switches[g]);
        exp::expect_same_stats(legacy.points[p].miss_ratio[g],
                               mp1.points[p].miss_ratio[g]);
      }
      ASSERT_EQ(legacy.points[p].cases.size(), mp1.points[p].cases.size());
      for (std::size_t c = 0; c < legacy.points[p].cases.size(); ++c) {
        const auto& la = legacy.points[p].cases[c].outcomes;
        const auto& ma = mp1.points[p].cases[c].outcomes;
        ASSERT_EQ(la.size(), ma.size());
        for (std::size_t g = 0; g < la.size(); ++g) {
          EXPECT_EQ(la[g].normalized_energy, ma[g].normalized_energy);
          exp::expect_same_result(la[g].result, ma[g].result);
          EXPECT_EQ(la[g].mp, nullptr);   // legacy: no per-core detail
          ASSERT_NE(ma[g].mp, nullptr);   // partitioned: one core
          EXPECT_EQ(ma[g].mp->n_cores(), 1u);
        }
      }
    }
  }
}

TEST(MpDifferential, DemandCacheOracleHoldsOnThePartitionedPath) {
  // lpSEH with verify_with_oracle reruns every slack sweep from scratch
  // inside compute_slack and DVS_ENSUREs bit-equality — a divergence on
  // the per-core sets (different ids, subsets, lengths than the full set)
  // would throw out of simulate_mp.
  const cpu::Processor proc = cpu::ideal_processor();
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      const std::uint64_t seed = util::hash_u64(0x0AC1E, m, i);
      const task::TaskSet ts =
          random_set(0.4 + 0.1 * static_cast<double>(i), seed, 6);
      SCOPED_TRACE("m=" + std::to_string(m) + " seed=" +
                   std::to_string(seed));
      mp::MpOptions mo;
      mo.n_cores = m;
      mo.heuristic = mp::PartitionHeuristic::kWorstFit;
      mo.length = 0.4;
      const mp::MpResult r = mp::simulate_mp(
          ts, task::uniform_model(seed), proc,
          [] {
            core::SlackTimeConfig sc;
            sc.verify_with_oracle = true;
            return sim::GovernorPtr(
                std::make_unique<core::SlackTimeGovernor>(sc));
          },
          mo);
      EXPECT_EQ(r.total.deadline_misses, 0);
    }
  }
}

}  // namespace
}  // namespace dvs
