#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace dvs::core {
namespace {

TEST(Registry, ContainsTheWholeFamily) {
  const auto names = governor_names();
  const std::set<std::string> expected{
      "noDVS", "staticEDF", "lppsEDF",      "ccEDF", "laEDF",
      "DRA",   "AGR",       "lpSEH-h",      "lpSEH", "uniformSlack"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(Registry, FactoryNamesMatchInstances) {
  for (const auto& spec : standard_governors()) {
    const auto g = spec.make();
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->name(), spec.name);
    EXPECT_FALSE(spec.description.empty());
  }
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_EQ(make_governor("lpseh")->name(), "lpSEH");
  EXPECT_EQ(make_governor("NODVS")->name(), "noDVS");
  EXPECT_EQ(make_governor("dra")->name(), "DRA");
}

TEST(Registry, InstancesAreIndependent) {
  const auto a = make_governor("ccEDF");
  const auto b = make_governor("ccEDF");
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_governor("ondemand"), util::ContractError);
  EXPECT_THROW((void)governor_factory(""), util::ContractError);
}

TEST(Registry, ReportOrderEndsWithPaperThenExtension) {
  // Report order matters: baselines, then the paper's algorithm, then the
  // repo's extension.
  const auto names = governor_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[names.size() - 2], "lpSEH");
  EXPECT_EQ(names.back(), "uniformSlack");
}

}  // namespace
}  // namespace dvs::core
