#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cpu/processors.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::core {
namespace {

TEST(Registry, ContainsTheWholeFamily) {
  const auto names = governor_names();
  const std::set<std::string> expected{
      "noDVS", "staticEDF", "lppsEDF",      "ccEDF", "laEDF",
      "DRA",   "AGR",       "lpSEH-h",      "lpSEH", "uniformSlack"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(Registry, FactoryNamesMatchInstances) {
  for (const auto& spec : standard_governors()) {
    const auto g = spec.make();
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->name(), spec.name);
    EXPECT_FALSE(spec.description.empty());
  }
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_EQ(make_governor("lpseh")->name(), "lpSEH");
  EXPECT_EQ(make_governor("NODVS")->name(), "noDVS");
  EXPECT_EQ(make_governor("dra")->name(), "DRA");
}

TEST(Registry, InstancesAreIndependent) {
  const auto a = make_governor("ccEDF");
  const auto b = make_governor("ccEDF");
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, InstancesShareNoMutableState) {
  // The parallel sweep engine constructs one fresh governor per
  // simulation and runs many concurrently; that is only sound if
  // instances of the same governor share no mutable state.  Audit every
  // registry entry: dirty one instance with a full simulation, then check
  // that a second instance still reproduces a fresh instance's result
  // exactly.
  const auto make_case = [](std::uint64_t seed, double u) {
    task::GeneratorConfig gen;
    gen.n_tasks = 4;
    gen.total_utilization = u;
    gen.period_min = 0.02;
    gen.period_max = 0.1;
    gen.bcet_ratio = 0.1;
    util::Rng rng(seed);
    return generate_task_set(gen, rng);
  };
  const auto ts_main = make_case(11, 0.7);
  const auto ts_other = make_case(12, 0.5);
  const auto workload = task::uniform_model(13);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 0.3;

  for (const auto& name : governor_names()) {
    SCOPED_TRACE(name);
    const auto baseline_gov = make_governor(name);
    const auto baseline =
        sim::simulate(ts_main, *workload, proc, *baseline_gov, opts);

    auto dirty = make_governor(name);
    auto clean = make_governor(name);
    // Mutate `dirty`'s state with a different case...
    (void)sim::simulate(ts_other, *workload, proc, *dirty, opts);
    // ...which must not affect `clean`.
    const auto after =
        sim::simulate(ts_main, *workload, proc, *clean, opts);
    EXPECT_EQ(after.total_energy(), baseline.total_energy());
    EXPECT_EQ(after.speed_switches, baseline.speed_switches);
    EXPECT_EQ(after.deadline_misses, baseline.deadline_misses);
    EXPECT_EQ(after.average_speed, baseline.average_speed);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_governor("ondemand"), util::ContractError);
  EXPECT_THROW((void)governor_factory(""), util::ContractError);
}

TEST(Registry, ReportOrderEndsWithPaperThenExtension) {
  // Report order matters: baselines, then the paper's algorithm, then the
  // repo's extension.
  const auto names = governor_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[names.size() - 2], "lpSEH");
  EXPECT_EQ(names.back(), "uniformSlack");
}

}  // namespace
}  // namespace dvs::core
