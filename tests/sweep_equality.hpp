// Shared exact-equality assertions for determinism tests: SimResult,
// RunningStats, MpResult and whole SweepOutcome comparisons, all with
// EXPECT_EQ on doubles — the contract across this repo is bit-identical
// results for every thread count / backend, not results within a
// tolerance.  Used by test_parallel_determinism, test_mp_differential and
// test_mp_golden.
#pragma once

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "mp/mp_sim.hpp"

namespace dvs::exp {

// EXPECT_EQ on doubles throughout: the contract is bit-identical results,
// not results within a tolerance.
inline void expect_same_result(const sim::SimResult& a,
                               const sim::SimResult& b) {
  EXPECT_EQ(a.governor, b.governor);
  EXPECT_EQ(a.sim_length, b.sim_length);
  EXPECT_EQ(a.busy_energy, b.busy_energy);
  EXPECT_EQ(a.idle_energy, b.idle_energy);
  EXPECT_EQ(a.transition_energy, b.transition_energy);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.idle_time, b.idle_time);
  EXPECT_EQ(a.transition_time, b.transition_time);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.jobs_truncated, b.jobs_truncated);
  EXPECT_EQ(a.speed_switches, b.speed_switches);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.average_speed, b.average_speed);
  EXPECT_EQ(a.per_task_energy, b.per_task_energy);
  EXPECT_EQ(a.worst_response, b.worst_response);
  EXPECT_EQ(a.degradation, b.degradation);
  EXPECT_EQ(a.jobs_skipped, b.jobs_skipped);
  EXPECT_EQ(a.mode_changes, b.mode_changes);
  EXPECT_EQ(a.time_degraded, b.time_degraded);
  EXPECT_EQ(a.mk_violations, b.mk_violations);
  EXPECT_EQ(a.hard_misses, b.hard_misses);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migration_overhead_us, b.migration_overhead_us);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].task_id, b.jobs[j].task_id);
    EXPECT_EQ(a.jobs[j].index, b.jobs[j].index);
    EXPECT_EQ(a.jobs[j].release, b.jobs[j].release);
    EXPECT_EQ(a.jobs[j].abs_deadline, b.jobs[j].abs_deadline);
    EXPECT_EQ(a.jobs[j].completion, b.jobs[j].completion);
    EXPECT_EQ(a.jobs[j].wcet, b.jobs[j].wcet);
    EXPECT_EQ(a.jobs[j].actual, b.jobs[j].actual);
    EXPECT_EQ(a.jobs[j].missed, b.jobs[j].missed);
    EXPECT_EQ(a.jobs[j].skipped, b.jobs[j].skipped);
  }
}

inline void expect_same_stats(const util::RunningStats& a,
                              const util::RunningStats& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.count() > 0) {
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
  }
  if (a.count() > 1) EXPECT_EQ(a.variance(), b.variance());
}

/// Per-core detail of a multiprocessor run: same backend, same partition
/// shape, same per-core results (core order), same aggregate, same
/// migration sequence.
inline void expect_same_mp(const mp::MpResult& a, const mp::MpResult& b) {
  EXPECT_EQ(a.backend, b.backend);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t m = 0; m < a.migrations.size(); ++m) {
    EXPECT_EQ(a.migrations[m].at, b.migrations[m].at);
    EXPECT_EQ(a.migrations[m].task_id, b.migrations[m].task_id);
    EXPECT_EQ(a.migrations[m].job_index, b.migrations[m].job_index);
    EXPECT_EQ(a.migrations[m].from_core, b.migrations[m].from_core);
    EXPECT_EQ(a.migrations[m].to_core, b.migrations[m].to_core);
  }
  EXPECT_EQ(a.partition.n_cores, b.partition.n_cores);
  EXPECT_EQ(a.partition.heuristic, b.partition.heuristic);
  EXPECT_EQ(a.partition.core_of, b.partition.core_of);
  EXPECT_EQ(a.partition.tasks_of_core, b.partition.tasks_of_core);
  EXPECT_EQ(a.partition.core_utilization, b.partition.core_utilization);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    expect_same_result(a.cores[c], b.cores[c]);
  }
  expect_same_result(a.total, b.total);
}

inline void expect_same_sweep(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.x_label, b.x_label);
  EXPECT_EQ(a.governors, b.governors);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.global_mp, b.global_mp);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const PointResult& pa = a.points[p];
    const PointResult& pb = b.points[p];
    EXPECT_EQ(pa.x, pb.x);
    EXPECT_EQ(pa.total_misses, pb.total_misses);
    EXPECT_EQ(pa.total_skips, pb.total_skips);
    EXPECT_EQ(pa.total_mk_violations, pb.total_mk_violations);
    EXPECT_EQ(pa.total_hard_misses, pb.total_hard_misses);
    EXPECT_EQ(pa.total_migrations, pb.total_migrations);
    EXPECT_EQ(pa.total_migration_overhead_us, pb.total_migration_overhead_us);
    ASSERT_EQ(pa.normalized_energy.size(), pb.normalized_energy.size());
    for (std::size_t g = 0; g < pa.normalized_energy.size(); ++g) {
      expect_same_stats(pa.normalized_energy[g], pb.normalized_energy[g]);
      expect_same_stats(pa.speed_switches[g], pb.speed_switches[g]);
      expect_same_stats(pa.miss_ratio[g], pb.miss_ratio[g]);
      if (!pa.skip_ratio.empty() && !pb.skip_ratio.empty()) {
        expect_same_stats(pa.skip_ratio[g], pb.skip_ratio[g]);
      }
      if (!pa.migrations.empty() && !pb.migrations.empty()) {
        expect_same_stats(pa.migrations[g], pb.migrations[g]);
      }
    }
    ASSERT_EQ(pa.cases.size(), pb.cases.size());
    for (std::size_t c = 0; c < pa.cases.size(); ++c) {
      const CaseOutcome& ca = pa.cases[c];
      const CaseOutcome& cb = pb.cases[c];
      ASSERT_EQ(ca.outcomes.size(), cb.outcomes.size());
      for (std::size_t g = 0; g < ca.outcomes.size(); ++g) {
        EXPECT_EQ(ca.outcomes[g].governor, cb.outcomes[g].governor);
        EXPECT_EQ(ca.outcomes[g].error, cb.outcomes[g].error);
        EXPECT_EQ(ca.outcomes[g].normalized_energy,
                  cb.outcomes[g].normalized_energy);
        expect_same_result(ca.outcomes[g].result, cb.outcomes[g].result);
        ASSERT_EQ(ca.outcomes[g].mp == nullptr, cb.outcomes[g].mp == nullptr);
        if (ca.outcomes[g].mp) {
          expect_same_mp(*ca.outcomes[g].mp, *cb.outcomes[g].mp);
        }
      }
    }
  }
  // Failure records are part of the deterministic outcome too.
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t f = 0; f < a.failures.size(); ++f) {
    EXPECT_EQ(a.failures[f].point_index, b.failures[f].point_index);
    EXPECT_EQ(a.failures[f].x, b.failures[f].x);
    EXPECT_EQ(a.failures[f].replication, b.failures[f].replication);
    EXPECT_EQ(a.failures[f].governor, b.failures[f].governor);
    EXPECT_EQ(a.failures[f].message, b.failures[f].message);
  }
}

}  // namespace dvs::exp
