// The oracle lower-bound property tier (ISSUE 6): on seeded random
// cases, (a) the YDS oracle schedule replays through the real simulator
// with ZERO deadline misses, and (b) the bound ordering
//
//   continuous oracle energy <= discrete oracle energy
//                            <= every registered governor's total energy
//
// holds on idle-free processors (ideal continuous and quantized).  Every
// failure prints a `replay: seed=...` line that reproduces the case
// exactly, mirroring test_mp_property.
#include <gtest/gtest.h>

#include <string>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "opt/oracle.hpp"
#include "opt/yds.hpp"
#include "sched/analysis.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

constexpr std::uint64_t kFuzzSalt = 0x0D5;  // oracle-bound fuzz domain
constexpr Time kHorizon = 1.0;

struct FuzzCase {
  task::TaskSet ts;
  task::ExecutionTimeModelPtr workload;
  double utilization = 0.0;
};

FuzzCase fuzz_case(std::uint64_t seed) {
  util::Rng rng(util::hash_u64(kFuzzSalt, seed));
  FuzzCase c;
  c.utilization = 0.3 + 0.65 * rng.unit();  // U in [0.3, 0.95): feasible
  task::GeneratorConfig cfg;
  cfg.n_tasks = static_cast<std::size_t>(rng.uniform_int(3, 6));
  cfg.total_utilization = c.utilization;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  c.ts = task::generate_task_set(cfg, rng, "oracle" + std::to_string(seed));
  const std::uint64_t wseed = util::hash_u64(kFuzzSalt, seed, 2);
  switch (seed % 3) {
    case 0: c.workload = task::uniform_model(wseed); break;
    case 1: c.workload = task::sin_pattern_model(wseed); break;
    default: c.workload = task::bimodal_model(wseed, 0.2, 0.15, 1.0); break;
  }
  return c;
}

std::string replay_line(std::uint64_t seed, const FuzzCase& c,
                        const std::string& detail) {
  return "replay: seed=" + std::to_string(seed) +
         " n=" + std::to_string(c.ts.size()) +
         " U=" + std::to_string(c.utilization) +
         " workload=" + c.workload->name() + " " + detail;
}

sim::SimResult run(const FuzzCase& c, const cpu::Processor& proc,
                   sim::Governor& g) {
  sim::SimOptions opts;
  opts.length = kHorizon;
  return sim::simulate(c.ts, *c.workload, proc, g, opts);
}

class OracleBoundFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(OracleBoundFuzz, OracleNeverMissesAndNoGovernorBeatsIt) {
  const cpu::Processor proc = std::string(GetParam()) == "ideal"
                                  ? cpu::ideal_processor()
                                  : cpu::quantized_ideal_processor(4);
  const auto names = core::governor_names();
  ASSERT_FALSE(names.empty());

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzCase c = fuzz_case(seed);
    ASSERT_TRUE(sched::edf_schedulable(c.ts));
    const opt::OracleBounds b =
        opt::oracle_bounds(c.ts, *c.workload, proc, kHorizon);
    SCOPED_TRACE(replay_line(seed, c, "processor=" + proc.name));
    // U < 1 synchronous implicit-deadline sets with demands <= WCET are
    // always YDS-feasible; a skip here would silently gut the property.
    ASSERT_TRUE(b.valid());
    EXPECT_LE(b.continuous_energy, b.discrete_energy + 1e-12);

    // (a) The optimal schedule replays through the real simulator clean.
    opt::OracleGovernor oracle;
    oracle.prime(c.ts, *c.workload, proc, kHorizon);
    const sim::SimResult ro = run(c, proc, oracle);
    EXPECT_EQ(ro.deadline_misses, 0) << "the oracle schedule missed";
    EXPECT_EQ(ro.jobs_completed + ro.jobs_truncated, ro.jobs_released);
    // The simulated oracle covers a superset of the bound's jobs, so its
    // measured busy energy sits at or above its own analytic bound.
    EXPECT_GE(ro.busy_energy, b.discrete_energy - 1e-9);

    // (b) No registered governor's TOTAL energy undercuts either bound.
    for (const auto& name : names) {
      SCOPED_TRACE("governor=" + name);
      auto g = core::make_governor(name);
      const sim::SimResult r = run(c, proc, *g);
      EXPECT_EQ(r.deadline_misses, 0);
      EXPECT_GE(r.total_energy(), b.discrete_energy - 1e-9)
          << "a governor beat the level-restricted optimum";
      EXPECT_GE(r.total_energy(), b.continuous_energy - 1e-9)
          << "a governor beat the continuous optimum";
      // On a continuous scale the simulator passes the oracle's speeds
      // through unchanged, so its RUN is also unbeatable.  On discrete
      // levels quantize-up inflates the run above the two-level-split
      // bound, and adaptive governors may legitimately land between the
      // two — only the analytic bounds above are invariants there.
      if (!proc.scale.is_discrete()) {
        EXPECT_GE(r.total_energy(), ro.total_energy() - 1e-9)
            << "a governor beat the simulated oracle schedule";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Processors, OracleBoundFuzz,
                         ::testing::Values("ideal", "quantized4"));

TEST(OracleGovernor, RefusesToRunUnprimed) {
  const FuzzCase c = fuzz_case(1);
  opt::OracleGovernor oracle;
  EXPECT_FALSE(oracle.primed());
  EXPECT_THROW((void)run(c, cpu::ideal_processor(), oracle),
               util::ContractError);
}

TEST(OracleGovernor, RefusesFixedPriorityDispatch) {
  const FuzzCase c = fuzz_case(2);
  opt::OracleGovernor oracle;
  oracle.prime(c.ts, *c.workload, cpu::ideal_processor(), kHorizon);
  sim::SimOptions opts;
  opts.length = kHorizon;
  opts.policy = sim::SchedulingPolicy::kFixedPriority;
  EXPECT_THROW((void)sim::simulate(c.ts, *c.workload, cpu::ideal_processor(),
                                   oracle, opts),
               util::ContractError);
}

TEST(OracleGovernor, ReprimingSwapsToTheNewCase) {
  const FuzzCase a = fuzz_case(3);
  const FuzzCase b = fuzz_case(4);
  opt::OracleGovernor oracle;
  oracle.prime(a.ts, *a.workload, cpu::ideal_processor(), kHorizon);
  oracle.prime(b.ts, *b.workload, cpu::ideal_processor(), kHorizon);
  const sim::SimResult r = run(b, cpu::ideal_processor(), oracle);
  EXPECT_EQ(r.deadline_misses, 0);
}

}  // namespace
}  // namespace dvs
