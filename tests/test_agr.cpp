#include "core/agr.hpp"

#include <gtest/gtest.h>

#include "core/dra.hpp"
#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TaskSet half_set() {
  TaskSet ts("agr");
  ts.add(make_task(0, "a", 10.0, 3.0, 0.3));  // u = 0.3
  ts.add(make_task(1, "b", 20.0, 4.0, 0.4));  // u = 0.2
  return ts;  // eta = 0.5
}

TEST(Agr, RejectsBadAggressiveness) {
  EXPECT_THROW((void)AgrGovernor(-0.1), util::ContractError);
  EXPECT_THROW((void)AgrGovernor(1.1), util::ContractError);
}

TEST(Agr, ZeroAggressivenessEqualsDra) {
  FakeContext actx(half_set());
  FakeContext dctx(half_set());
  AgrGovernor agr(0.0);
  DraGovernor dra;
  agr.on_start(actx);
  dra.on_start(dctx);
  auto& ja = actx.add_job(0, 0, 0.0);
  auto& jd = dctx.add_job(0, 0, 0.0);
  agr.on_release(ja, actx);
  dra.on_release(jd, dctx);
  EXPECT_DOUBLE_EQ(agr.select_speed(ja, actx), dra.select_speed(jd, dctx));
}

TEST(Agr, SpeculatesBelowDraWithinTheArrivalWindow) {
  FakeContext ctx(half_set());
  AgrGovernor agr(1.0);
  agr.on_start(ctx);
  auto& job = ctx.add_job(0, 0, 0.0);
  agr.on_release(job, ctx);
  // DRA speed: rem 3 / budget 6 = 0.5.  Next arrival: t = 10 (delta 6,
  // capped by the budget).  alpha_floor = (3 - 0)/6 = 0.5 -> window equals
  // the budget, nothing to speculate on here.
  EXPECT_NEAR(agr.select_speed(job, ctx), 0.5, 1e-9);
}

TEST(Agr, SpeculationKicksInWithReclaimedBudget) {
  FakeContext ctx(half_set());
  AgrGovernor agr(1.0);
  agr.on_start(ctx);
  // Both jobs released; task 0's finishes almost instantly, leaving its
  // canonical allotment to task 1.
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  agr.on_release(j0, ctx);
  agr.on_release(j1, ctx);
  ctx.now_ = 1.0;
  j0.actual = 0.5;
  j0.executed = 0.5;
  agr.on_completion(j0, ctx);
  ctx.clear_jobs();
  auto& j1b = ctx.add_job(1, 0, 0.0);

  // DRA: budget = 5 (leftover) + 8 (own) = 13, alpha_dra = 4/13 ~ 0.3077.
  // Speculation window: next arrival at t = 10 -> delta = 9;
  // alpha_floor = (4 - (13 - 9))/9 = 0.  Full aggressiveness drops the
  // request to the recoverable floor (clamped to a positive epsilon).
  const double alpha = agr.select_speed(j1b, ctx);
  EXPECT_LT(alpha, 4.0 / 13.0 - 0.05);
}

TEST(Agr, NeverMissesUnderWorstCase) {
  const TaskSet ts = half_set();
  const auto workload = task::constant_ratio_model(1.0);
  AgrGovernor agr(1.0);
  sim::SimOptions opts;
  opts.length = 200.0;
  const auto r =
      sim::simulate(ts, *workload, cpu::ideal_processor(), agr, opts);
  EXPECT_EQ(r.deadline_misses, 0);
}

TEST(Agr, SpeculationLowersAverageSpeedOnLightWorkloads) {
  const TaskSet ts = half_set();
  const auto workload = task::constant_ratio_model(0.3);
  AgrGovernor agr(1.0);
  DraGovernor dra;
  sim::SimOptions opts;
  opts.length = 200.0;
  const auto a =
      sim::simulate(ts, *workload, cpu::ideal_processor(), agr, opts);
  const auto d =
      sim::simulate(ts, *workload, cpu::ideal_processor(), dra, opts);
  EXPECT_EQ(a.deadline_misses, 0);
  EXPECT_EQ(d.deadline_misses, 0);
  EXPECT_LT(a.average_speed, d.average_speed);
}

TEST(Agr, AggressivenessInterpolatesMonotonically) {
  const TaskSet ts = half_set();
  const auto workload = task::constant_ratio_model(0.3);
  sim::SimOptions opts;
  opts.length = 100.0;
  double prev_speed = 0.0;
  for (double k : {1.0, 0.5, 0.0}) {
    AgrGovernor agr(k);
    const auto r =
        sim::simulate(ts, *workload, cpu::ideal_processor(), agr, opts);
    EXPECT_EQ(r.deadline_misses, 0) << "aggressiveness " << k;
    EXPECT_GE(r.average_speed, prev_speed - 1e-9);
    prev_speed = r.average_speed;
  }
}

}  // namespace
}  // namespace dvs::core
