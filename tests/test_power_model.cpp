#include "cpu/power_model.hpp"

#include <gtest/gtest.h>

#include "cpu/processors.hpp"
#include "util/error.hpp"

namespace dvs::cpu {
namespace {

using util::ContractError;

TEST(CubicModel, MatchesAlphaCubed) {
  const auto m = cubic_power_model();
  EXPECT_DOUBLE_EQ(m->busy_power(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m->busy_power(0.5), 0.125);
  EXPECT_DOUBLE_EQ(m->busy_power(0.1), 0.001);
  EXPECT_DOUBLE_EQ(m->idle_power(), 0.0);
}

TEST(CubicModel, VoltageProportionalToSpeed) {
  const auto m = cubic_power_model(0.0, 2.0);
  EXPECT_DOUBLE_EQ(m->voltage(1.0), 2.0);
  EXPECT_DOUBLE_EQ(m->voltage(0.5), 1.0);
}

TEST(CubicModel, IdleFraction) {
  const auto m = cubic_power_model(0.07);
  EXPECT_DOUBLE_EQ(m->idle_power(), 0.07);
}

TEST(CubicModel, RejectsBadArguments) {
  EXPECT_THROW((void)cubic_power_model(1.0), ContractError);
  EXPECT_THROW((void)cubic_power_model(0.0, -1.0), ContractError);
  EXPECT_THROW((void)cubic_power_model()->busy_power(0.0), ContractError);
  EXPECT_THROW((void)cubic_power_model()->busy_power(1.5), ContractError);
}

TEST(AlphaPowerLaw, NormalizedAtFullSpeed) {
  const auto m = alpha_power_law_model(1.8, 0.5, 1.5, 0.0);
  EXPECT_NEAR(m->busy_power(1.0), 1.0, 1e-9);
  EXPECT_NEAR(m->voltage(1.0), 1.8, 1e-6);
}

TEST(AlphaPowerLaw, VoltageMonotoneInSpeed) {
  const auto m = alpha_power_law_model(1.8, 0.5);
  double prev = 0.0;
  for (int i = 1; i <= 10; ++i) {
    const double v = m->voltage(i / 10.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(AlphaPowerLaw, LessConvexThanCubicNearThreshold) {
  // With a nonzero threshold voltage, low speeds still need substantial
  // voltage, so power at low alpha is *higher* than the ideal cubic.
  const auto real = alpha_power_law_model(1.8, 0.6, 1.5, 0.0);
  const auto ideal = cubic_power_model();
  EXPECT_GT(real->busy_power(0.2), ideal->busy_power(0.2));
}

TEST(AlphaPowerLaw, RejectsBadArguments) {
  EXPECT_THROW((void)alpha_power_law_model(0.5, 0.6), ContractError);
  EXPECT_THROW((void)alpha_power_law_model(1.8, 0.5, 0.5), ContractError);
}

TEST(TableModel, NormalizedToTopPoint) {
  const auto m = table_power_model("t",
                                   {{0.5, 1.0, 100.0}, {1.0, 2.0, 400.0}});
  EXPECT_DOUBLE_EQ(m->busy_power(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m->busy_power(0.5), 0.25);
}

TEST(TableModel, DerivesPowerFromVSquaredFWhenMissing) {
  const auto m =
      table_power_model("t", {{0.5, 1.0, -1.0}, {1.0, 2.0, -1.0}});
  // raw powers: 0.5*1 = 0.5 and 1*4 = 4 -> normalized 0.125 and 1.
  EXPECT_NEAR(m->busy_power(0.5), 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(m->busy_power(1.0), 1.0);
}

TEST(TableModel, InterpolatesBetweenPoints) {
  const auto m = table_power_model("t",
                                   {{0.5, 1.0, 100.0}, {1.0, 2.0, 400.0}});
  const double p75 = m->busy_power(0.75);
  EXPECT_GT(p75, 0.25);
  EXPECT_LT(p75, 1.0);
  // Voltage interpolates linearly.
  EXPECT_NEAR(m->voltage(0.75), 1.5, 1e-12);
}

TEST(TableModel, ExtrapolatesBelowLowestPoint) {
  const auto m = table_power_model("t",
                                   {{0.5, 1.0, 100.0}, {1.0, 2.0, 400.0}});
  // Below the first point power falls linearly with frequency.
  EXPECT_NEAR(m->busy_power(0.25), 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(m->voltage(0.25), 1.0);
}

TEST(TableModel, RequiresFullSpeedPoint) {
  EXPECT_THROW((void)table_power_model("t", {{0.5, 1.0, 1.0}}),
               ContractError);
  EXPECT_THROW((void)table_power_model("t", {}), ContractError);
}

/// Physical sanity for every preset processor's power model.
class PresetPower : public ::testing::TestWithParam<const char*> {};

TEST_P(PresetPower, MonotoneAndNormalized) {
  const Processor p = processor_by_name(GetParam());
  const auto& m = *p.power;
  EXPECT_NEAR(m.busy_power(1.0), 1.0, 1e-9);
  double prev_power = 0.0;
  double prev_voltage = 0.0;
  for (int i = 1; i <= 20; ++i) {
    const double a = i / 20.0;
    const double pw = m.busy_power(a);
    const double v = m.voltage(a);
    EXPECT_GE(pw, prev_power - 1e-12) << "power not monotone at " << a;
    EXPECT_GE(v, prev_voltage - 1e-12) << "voltage not monotone at " << a;
    EXPECT_GE(pw, 0.0);
    prev_power = pw;
    prev_voltage = v;
  }
  EXPECT_GE(m.idle_power(), 0.0);
  EXPECT_LT(m.idle_power(), 0.5);
}

TEST_P(PresetPower, ScaleEndsAtFullSpeed) {
  const Processor p = processor_by_name(GetParam());
  EXPECT_DOUBLE_EQ(p.scale.quantize_up(1.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Processors, PresetPower,
                         ::testing::Values("ideal", "xscale", "strongarm",
                                           "crusoe", "four-level"));

TEST(Processors, UnknownNameThrows) {
  EXPECT_THROW((void)processor_by_name("pentium"), ContractError);
}

TEST(Processors, QuantizedIdealLevelCount) {
  const Processor p = quantized_ideal_processor(8);
  EXPECT_EQ(p.scale.levels().size(), 8u);
}

}  // namespace
}  // namespace dvs::cpu
