#include "cpu/frequency.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dvs::cpu {
namespace {

using util::ContractError;

TEST(Continuous, ClampsIntoRange) {
  const auto s = FrequencyScale::continuous(0.1);
  EXPECT_FALSE(s.is_discrete());
  EXPECT_DOUBLE_EQ(s.alpha_min(), 0.1);
  EXPECT_DOUBLE_EQ(s.quantize_up(0.5), 0.5);
  EXPECT_DOUBLE_EQ(s.quantize_up(0.05), 0.1);
  EXPECT_DOUBLE_EQ(s.quantize_up(1.7), 1.0);
}

TEST(Continuous, RejectsBadAlphaMin) {
  EXPECT_THROW((void)FrequencyScale::continuous(0.0), ContractError);
  EXPECT_THROW((void)FrequencyScale::continuous(1.5), ContractError);
}

TEST(Discrete, RoundsUpOnly) {
  const auto s = FrequencyScale::discrete({0.25, 0.5, 0.75, 1.0});
  EXPECT_TRUE(s.is_discrete());
  EXPECT_DOUBLE_EQ(s.quantize_up(0.26), 0.5);
  EXPECT_DOUBLE_EQ(s.quantize_up(0.5), 0.5);    // exact level maps to itself
  EXPECT_DOUBLE_EQ(s.quantize_up(0.51), 0.75);
  EXPECT_DOUBLE_EQ(s.quantize_up(0.10), 0.25);  // below min clamps up
  EXPECT_DOUBLE_EQ(s.quantize_up(0.99), 1.0);
  EXPECT_DOUBLE_EQ(s.quantize_up(1.3), 1.0);
}

TEST(Discrete, SortsAndDeduplicates) {
  const auto s = FrequencyScale::discrete({1.0, 0.5, 0.5, 0.25});
  ASSERT_EQ(s.levels().size(), 3u);
  EXPECT_DOUBLE_EQ(s.levels()[0], 0.25);
  EXPECT_DOUBLE_EQ(s.levels()[2], 1.0);
  EXPECT_DOUBLE_EQ(s.alpha_min(), 0.25);
}

TEST(Discrete, RequiresMaxSpeedLevel) {
  EXPECT_THROW((void)FrequencyScale::discrete({0.25, 0.5}), ContractError);
  EXPECT_THROW((void)FrequencyScale::discrete({}), ContractError);
  EXPECT_THROW((void)FrequencyScale::discrete({0.0, 1.0}), ContractError);
}

TEST(UniformLevels, EvenSpacing) {
  const auto s = FrequencyScale::uniform_levels(4, 0.25);
  ASSERT_EQ(s.levels().size(), 4u);
  EXPECT_DOUBLE_EQ(s.levels()[0], 0.25);
  EXPECT_DOUBLE_EQ(s.levels()[1], 0.5);
  EXPECT_DOUBLE_EQ(s.levels()[2], 0.75);
  EXPECT_DOUBLE_EQ(s.levels()[3], 1.0);
}

TEST(UniformLevels, SingleLevelIsFullSpeed) {
  const auto s = FrequencyScale::uniform_levels(1, 0.3);
  ASSERT_EQ(s.levels().size(), 1u);
  EXPECT_DOUBLE_EQ(s.levels()[0], 1.0);
}

TEST(Describe, MentionsKind) {
  EXPECT_NE(FrequencyScale::continuous(0.05).describe().find("continuous"),
            std::string::npos);
  EXPECT_NE(FrequencyScale::uniform_levels(2).describe().find("discrete"),
            std::string::npos);
}

/// Quantization must never return a speed below the request (deadline
/// safety) for any scale.
class QuantizeUpProperty : public ::testing::TestWithParam<FrequencyScale> {};

TEST_P(QuantizeUpProperty, NeverBelowRequestWithinRange) {
  const auto& s = GetParam();
  for (int i = 1; i <= 100; ++i) {
    const double alpha = i / 100.0;
    const double q = s.quantize_up(alpha);
    if (alpha >= s.alpha_min()) {
      EXPECT_GE(q, alpha - 1e-12);
    }
    EXPECT_LE(q, 1.0);
    EXPECT_GE(q, s.alpha_min());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Frequency, QuantizeUpProperty,
    ::testing::Values(FrequencyScale::continuous(0.05),
                      FrequencyScale::continuous(0.3),
                      FrequencyScale::uniform_levels(2),
                      FrequencyScale::uniform_levels(5, 0.2),
                      FrequencyScale::discrete({0.15, 0.4, 0.6, 0.8, 1.0})));

}  // namespace
}  // namespace dvs::cpu
