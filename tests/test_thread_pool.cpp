#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace dvs::util {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), ContractError);
}

TEST(ThreadPool, ReportsItsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < n; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, FuturesArriveInSubmissionOrderRegardlessOfExecution) {
  ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] {
      // Stagger execution so completion order differs from submission.
      std::this_thread::sleep_for(std::chrono::microseconds((i % 7) * 50));
      return i;
    }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructionDrainsPendingWork) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(executed.load(), 32);
  // Every future is satisfied — no broken promises.
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, SubmitAfterShutdownReturnsFailedFuture) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopped());
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  // Service hardening: a late submit is a rejected request, not UB.  The
  // future is valid and reports the refusal as ContractError.
  auto f = pool.submit([] { return 7; });
  ASSERT_TRUE(f.valid());
  EXPECT_THROW((void)f.get(), ContractError);
  // The rejected task never ran.
  std::atomic<bool> ran{false};
  auto g = pool.submit([&ran] { ran.store(true); });
  EXPECT_THROW(g.get(), ContractError);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkFirst) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&executed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      executed.fetch_add(1);
    }));
  }
  pool.shutdown();
  EXPECT_EQ(executed.load(), 32);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  pool.shutdown();
  EXPECT_NO_THROW(pool.shutdown());
  EXPECT_NO_THROW(pool.shutdown());
  EXPECT_TRUE(pool.stopped());
  // The destructor's implicit shutdown after an explicit one is also fine.
}

TEST(ThreadPool, ThrowingTaskIsContainedToItsFuture) {
  // A worker that sees a throwing task must not take the pool (or the
  // process) down with it: later submissions on the same workers succeed.
  ThreadPool pool(1);  // one worker => the same thread handles all three
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto also_bad = pool.submit([]() -> int { throw 42; });  // non-std throw
  auto good = pool.submit([] { return 3; });
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  EXPECT_THROW((void)also_bad.get(), int);
  EXPECT_EQ(good.get(), 3);
}

TEST(ThreadPool, SingleWorkerDegeneratesToSerialFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  // One worker + FIFO queue: tasks run exactly in submission order, so the
  // unsynchronized push_backs above are safe and ordered.
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace dvs::util
