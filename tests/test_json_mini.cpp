// Hostile-input hardening of the JSON parser (obs/json_mini.hpp).  The
// svc daemon feeds client bytes straight into parse_json, so every
// malformed shape here must throw ContractError — never crash, hang, or
// silently accept.  The table covers one case per failure class; the
// focused tests pin the numeric limits (depth cap, double range) and the
// behaviors that are easy to regress (duplicate keys, truncation points).
#include "obs/json_mini.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace dvs::obs {
namespace {

using util::ContractError;

TEST(JsonMini, DeepNestingIsCappedNotUnbounded) {
  // Just under the cap parses; past it throws instead of overflowing the
  // recursive-descent stack.
  const auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_NO_THROW((void)parse_json(nested(150)));
  EXPECT_THROW((void)parse_json(nested(250)), ContractError);
  // Objects burn the same budget.
  std::string obj;
  for (int i = 0; i < 250; ++i) obj += "{\"k\":";
  obj += "0";
  for (int i = 0; i < 250; ++i) obj += "}";
  EXPECT_THROW((void)parse_json(obj), ContractError);
  // A pathological 100k-deep array must still be a clean error.
  EXPECT_THROW((void)parse_json(nested(100000)), ContractError);
}

TEST(JsonMini, NumbersBeyondDoubleRangeAreErrors) {
  EXPECT_THROW((void)parse_json("1e999"), ContractError);
  EXPECT_THROW((void)parse_json("-1e999"), ContractError);
  EXPECT_THROW((void)parse_json("[1, 2, 1e400]"), ContractError);
  // The largest finite double still parses.
  EXPECT_NO_THROW((void)parse_json("1.7976931348623157e308"));
  // Underflow to zero is representable, not an error.
  EXPECT_EQ(parse_json("1e-999").number, 0.0);
}

TEST(JsonMini, DuplicateObjectKeysAreRejected) {
  try {
    (void)parse_json("{\"a\":1,\"b\":2,\"a\":3}");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key 'a'"),
              std::string::npos)
        << e.what();
  }
  // Same key in different objects is fine.
  EXPECT_NO_THROW((void)parse_json("[{\"a\":1},{\"a\":2}]"));
  // And nesting under the same key is fine.
  EXPECT_NO_THROW((void)parse_json("{\"a\":{\"a\":1}}"));
}

TEST(JsonMini, TruncationAtEveryPrefixIsACleanError) {
  // Chop a representative document at every byte boundary; each proper
  // prefix must throw (never crash) because no prefix of it is itself a
  // complete document.
  const std::string doc =
      "{\"op\":\"admit\",\"tasks\":[{\"name\":\"c\\u00e9\",\"period\":1e-2}],"
      "\"ok\":true}";
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW((void)parse_json(doc.substr(0, len)), ContractError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW((void)parse_json(doc));
}

// Malformed-input table: every entry must raise ContractError.
struct BadJson {
  const char* label;
  const char* text;
};

class JsonMiniMalformed : public ::testing::TestWithParam<BadJson> {};

TEST_P(JsonMiniMalformed, Throws) {
  EXPECT_THROW((void)parse_json(GetParam().text), ContractError)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Table, JsonMiniMalformed,
    ::testing::Values(
        BadJson{"empty_input", ""},
        BadJson{"whitespace_only", "  \n\t "},
        BadJson{"truncated_mid_string", "\"ab"},
        BadJson{"truncated_mid_escape", "\"ab\\"},
        BadJson{"truncated_unicode_escape", "\"\\u00"},
        BadJson{"non_hex_unicode_escape", "\"\\u00gz\""},
        BadJson{"unknown_escape", "\"\\q\""},
        BadJson{"raw_control_in_string", "\"a\nb\""},
        BadJson{"bare_minus", "-"},
        BadJson{"leading_plus", "+1"},
        BadJson{"bad_literal_True", "True"},
        BadJson{"bad_literal_nul", "nul"},
        BadJson{"trailing_garbage", "1 2"},
        BadJson{"trailing_comma_array", "[1,]"},
        BadJson{"trailing_comma_object", "{\"a\":1,}"},
        BadJson{"missing_colon", "{\"a\" 1}"},
        BadJson{"unquoted_key", "{a:1}"},
        BadJson{"unterminated_array", "[1,2"},
        BadJson{"unterminated_object", "{\"a\":1"},
        BadJson{"lone_close", "]"},
        BadJson{"single_quotes", "'a'"}),
    [](const ::testing::TestParamInfo<BadJson>& info) {
      return info.param.label;
    });

TEST(JsonMini, ErrorsCarryTheByteOffset) {
  try {
    (void)parse_json("[1, 2, x]");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("byte 7"), std::string::npos)
        << e.what();
  }
}

TEST(JsonMini, AcceptsTheValidEdgeCases) {
  EXPECT_EQ(parse_json("-0.0").number, 0.0);
  EXPECT_EQ(parse_json("[]").array.size(), 0u);
  EXPECT_EQ(parse_json("{}").object.size(), 0u);
  EXPECT_EQ(parse_json("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").string, "\xC3\xA9");  // é as UTF-8
  EXPECT_EQ(parse_json(" 2.5e+2 ").number, 250.0);
}

}  // namespace
}  // namespace dvs::obs
